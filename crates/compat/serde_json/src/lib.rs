//! Offline stand-in for `serde_json`: JSON text to and from the `serde`
//! stand-in's [`Value`] tree.
//!
//! One deliberate deviation from strict JSON: non-finite floats are
//! written as the bare tokens `Infinity`, `-Infinity`, and `NaN` (strict
//! JSON has no spelling for them, and solver models legitimately contain
//! infinite bounds), and the parser accepts those tokens back.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Serialization/deserialization failure with a short message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value).map_err(Error::from)
}

pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(Error::from)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_nan() {
                out.push_str("NaN");
            } else if f.is_infinite() {
                out.push_str(if *f > 0.0 { "Infinity" } else { "-Infinity" });
            } else if *f == f.trunc() && f.abs() < 1e15 {
                // Keep integral floats distinguishable from integers.
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, it, d| {
            write_value(o, it, indent, d)
        }),
        Value::Object(pairs) => {
            write_seq(out, pairs.iter(), indent, depth, ('{', '}'), |o, (k, it), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, it, indent, d);
            })
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') if self.eat_word("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_word("null") => Ok(Value::Null),
            Some(b'N') if self.eat_word("NaN") => Ok(Value::Float(f64::NAN)),
            Some(b'I') if self.eat_word("Infinity") => Ok(Value::Float(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(Value::Float(f64::NEG_INFINITY))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                None => return Err(self.err("unterminated string")),
                Some(_) => unreachable!("scan stops only at quote or backslash"),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf8 in number"))?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|_| self.err("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| self.err("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(parse("42").unwrap(), Value::UInt(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
        assert_eq!(parse("Infinity").unwrap(), Value::Float(f64::INFINITY));
        assert_eq!(parse("-Infinity").unwrap(), Value::Float(f64::NEG_INFINITY));
    }

    #[test]
    fn roundtrip_nested() {
        let v: Vec<(u32, f64)> = vec![(1, 0.5), (2, f64::INFINITY)];
        let text = to_string(&v).unwrap();
        let back: Vec<(u32, f64)> = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_shape() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.1 + 0.2;
        let text = to_string(&x).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(x, back);
    }
}
