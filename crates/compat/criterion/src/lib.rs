//! Offline stand-in for `criterion`.
//!
//! Implements the macro/group/bencher surface the bench targets use.
//! Measurement is plain wall-clock sampling (no outlier analysis or
//! bootstrap): each benchmark runs `sample_size` timed iterations after a
//! warm-up run, then reports min/mean/max and writes a criterion-shaped
//! `estimates.json` (nanosecond `point_estimate`s under `mean`/`median`)
//! to `target/criterion/<benchmark-id>/new/` so downstream tooling can
//! scrape every bench target uniformly.
//!
//! Pass `--quick` (or set `CRITERION_QUICK=1`) to run one sample per
//! benchmark, which keeps CI smoke runs fast.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier; renders as `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", name.into()) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Top-level driver handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("CRITERION_QUICK").is_some();
        Criterion { sample_size: 10, quick }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let samples = if self.quick { 1 } else { self.sample_size };
        run_benchmark(&id, samples, |b| f(b));
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    fn samples(&self) -> usize {
        if self.criterion.quick {
            1
        } else {
            self.sample_size.unwrap_or(self.criterion.sample_size)
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.samples(), |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.id);
        run_benchmark(&id, self.samples(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(id: &str, samples: usize, mut run: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { elapsed: Duration::ZERO };
    run(&mut b); // warm-up (also the measurement when the routine never calls iter)
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        b.elapsed = Duration::ZERO;
        run(&mut b);
        times.push(b.elapsed.as_secs_f64() * 1e9);
    }
    times.sort_by(|a, z| a.partial_cmp(z).unwrap());
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let median = times[times.len() / 2];
    let (min, max) = (times[0], times[times.len() - 1]);
    println!(
        "{id:<50} time: [{} {} {}] ({} samples)",
        format_ns(min),
        format_ns(mean),
        format_ns(max),
        times.len()
    );
    write_estimates(id, mean, median, min, max);
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Criterion-shaped estimates file: `target/criterion/<id>/new/estimates.json`
/// with `mean.point_estimate` / `median.point_estimate` in nanoseconds.
fn write_estimates(id: &str, mean: f64, median: f64, min: f64, max: f64) {
    let sanitized: String = id
        .chars()
        .map(|c| if c.is_alphanumeric() || c == '/' || c == '_' || c == '-' { c } else { '_' })
        .collect();
    let dir = std::path::Path::new("target/criterion").join(sanitized).join("new");
    if std::fs::create_dir_all(&dir).is_err() {
        return; // benches must not fail on read-only targets
    }
    let estimate = |point: f64, lo: f64, hi: f64| {
        format!(
            "{{\"confidence_interval\":{{\"confidence_level\":0.95,\
             \"lower_bound\":{lo},\"upper_bound\":{hi}}},\
             \"point_estimate\":{point},\"standard_error\":0.0}}"
        )
    };
    let json = format!(
        "{{\"mean\":{},\"median\":{}}}",
        estimate(mean, min, max),
        estimate(median, min, max)
    );
    let _ = std::fs::write(dir.join("estimates.json"), json);
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion { sample_size: 2, quick: false };
        let mut g = c.benchmark_group("unit");
        g.sample_size(2);
        let mut runs = 0;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            runs += 1;
        });
        g.finish();
        assert!(runs >= 2);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion { sample_size: 1, quick: true };
        let mut g = c.benchmark_group("unit2");
        g.bench_with_input(BenchmarkId::from_parameter("p7"), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2));
            assert_eq!(x, 7);
        });
        g.finish();
    }
}
