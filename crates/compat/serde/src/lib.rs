//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so this workspace ships a
//! minimal serialization framework under the `serde` name. Unlike the real
//! serde's visitor architecture, types convert through an owned JSON-like
//! [`Value`] tree: [`Serialize`] produces a `Value`, [`Deserialize`] reads
//! one. The companion `serde_json` stand-in renders `Value` to and from
//! JSON text. Only the API surface this workspace uses is provided.

use std::collections::{BTreeMap, BTreeSet};

pub use serde_derive::{Deserialize, Serialize};

/// JSON-like data tree all (de)serialization goes through.
///
/// Objects keep insertion order (a plain pair list) so output is stable and
/// matches struct declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integer (negative literals parse here).
    Int(i64),
    /// Unsigned integer (non-negative literals parse here).
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f < 1.9e19 => Some(*f as u64),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable message with no position info.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    pub fn missing(field: &str) -> Self {
        DeError(format!("missing field `{field}`"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Convert `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Mirror of `serde::de` for the `DeserializeOwned` bound used in generic
/// round-trip helpers.
pub mod de {
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// A `Value` (de)serializes as itself, so generic code can pass raw JSON
/// trees through without knowing their shape (e.g. a service embedding an
/// already-rendered solution in a response envelope).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_int {
    ($($t:ty => $var:ident as $conv:ty, $as:ident);* $(;)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::$var(*self as $conv)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide = v
                    .$as()
                    .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(wide)
                    .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_int! {
    u8 => UInt as u64, as_u64;
    u16 => UInt as u64, as_u64;
    u32 => UInt as u64, as_u64;
    u64 => UInt as u64, as_u64;
    usize => UInt as u64, as_u64;
    i8 => Int as i64, as_i64;
    i16 => Int as i64, as_i64;
    i32 => Int as i64, as_i64;
    i64 => Int as i64, as_i64;
    isize => Int as i64, as_i64;
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::new("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| DeError::new("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_owned).ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

/// A tree-based framework has no borrowed input to point into, so static
/// string slices deserialize by leaking. Only used for small catalog
/// entries (device names); the leak is bounded by input size.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::new("expected string"))?;
        Ok(Box::leak(s.to_owned().into_boxed_str()))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::new("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::new("expected tuple array"))?;
                let expected = [$($n),+].len();
                if items.len() != expected {
                    return Err(DeError::new(format!(
                        "expected {expected}-tuple, found {} elements", items.len())));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| DeError::new(format!("expected {N} elements, found {}", items.len())))
    }
}
