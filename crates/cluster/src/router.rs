//! The `gmm route` front-end daemon: one protocol-v2 endpoint fanning
//! out to N `mapsrv` backends.
//!
//! ## Shape
//!
//! Each client connection gets its own set of backend links (so a slow
//! client never head-of-line-blocks another), its own bounded
//! [`Outbox`] (the daemon's rank-gated, drop-oldest event queue,
//! reused wholesale — responses and merged backend events leave in
//! production order through one writer thread), and its own view of
//! the ring (backends it has observed dying are dropped from *its*
//! ring immediately; fresh connections start from the configured set
//! and rediscover liveness by dialing).
//!
//! Each backend link is one TCP connection driven by a *pump* thread:
//! responses are handed to whichever router thread is mid-round-trip
//! on that link (requests per link are serialized by a mutex), while
//! server-push event frames are remapped from backend job ids to
//! router job ids and pushed straight into the client's outbox. When
//! the pump sees EOF the backend is declared lost: it leaves the ring,
//! its in-flight jobs are re-submitted to the keys' new owners, and
//! the client's event stream continues seamlessly — the outbox's rank
//! gate squeezes out the replay of `queued`/`running` transitions the
//! re-submission causes.
//!
//! ## Job ids
//!
//! Router-issued ids embed the issuing backend:
//! `id = backend_job * 64 + backend_index` (index into
//! [`RouterOptions::backends`]; index 63 is reserved for jobs the
//! router answers itself, e.g. peer cache-fill hits). The encoding
//! makes `poll`/`result`/`attach` forwardable *statelessly*: a job
//! submitted on one router connection resolves from any other — or
//! from a freshly restarted router — without shared router state. Jobs
//! that were re-routed after a backend loss are the exception: their
//! mapping lives only in the connection that moved them, so a router
//! restart orphans exactly the jobs whose backend also died.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde_json::Value;

use gmm_api::Termination;
use gmm_service::events::{Frame, Outbox, Popped};
use gmm_service::hash::{instance_key, InstanceKey};
use gmm_service::protocol::{
    AttachSnapshot, JobEvent, ProtoVersions, Request, Response, ServiceStats, SubmitReceipt,
    SubmitSpec, CAPABILITIES, PROTO_VERSION,
};
use gmm_service::queue::JobState;

use crate::ring::ShardMap;

/// Most backends one router can front: ids reserve 6 bits for the
/// backend index, with one value kept for router-served jobs.
pub const MAX_BACKENDS: usize = 63;

/// The id slot for jobs the router answers itself (peer cache-fill
/// hits and structured failures that never reached a backend).
const LOCAL_IDX: usize = 63;

/// Per-round-trip patience on a backend link before the backend is
/// declared lost.
const LINK_TIMEOUT: Duration = Duration::from_secs(30);

/// Bounded retries against a backend answering `overloaded` before the
/// rejection is propagated (client-facing submits) or the job is
/// failed (re-routes after a backend loss).
const OVERLOAD_RETRIES: u32 = 5;

/// Cap on queued droppable frames per client connection (mirrors the
/// daemon's own outbox bound).
const EVENT_QUEUE_CAP: usize = 1024;

/// Cap on backend events buffered while their submit receipts are
/// still in flight (the pump can outrun the submit round-trip).
const PENDING_EVENT_CAP: usize = 512;

fn encode(backend_job: u64, idx: usize) -> u64 {
    backend_job * 64 + idx as u64
}

fn decode(rid: u64) -> (u64, usize) {
    (rid / 64, (rid % 64) as usize)
}

/// Configuration for [`Router::start`].
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Backend `mapsrv` addresses. Order matters: the position is baked
    /// into router job ids, so restarts must keep the list stable.
    pub backends: Vec<String>,
    /// Ring points per backend; `0` uses [`crate::ring::DEFAULT_VNODES`].
    pub vnodes: usize,
    /// Before routing a submit, ask the key's *previous* ring owner for
    /// a cached solution via the non-promoting `peek` verb — the warm
    /// handoff that makes growing the ring cheap.
    pub peer_fill: bool,
}

impl RouterOptions {
    pub fn new(backends: Vec<String>) -> RouterOptions {
        RouterOptions {
            backends,
            vnodes: 0,
            peer_fill: false,
        }
    }
}

struct RouterShared {
    opts: RouterOptions,
    stop: AtomicBool,
    /// Backend connections declared lost (the soak's failover counter).
    reconnects: AtomicU64,
    /// In-flight jobs moved to a new owner after a backend loss.
    jobs_rerouted: AtomicU64,
    /// Submits answered from a peer's cache instead of a solve.
    peer_fills: AtomicU64,
    proto_v1: AtomicU64,
    proto_v2: AtomicU64,
    started: Instant,
}

/// The accepting front-end. Start with [`Router::start`], stop with
/// [`Router::request_stop`] (or a client `shutdown` verb) and reap
/// with [`Router::join`].
pub struct Router {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    accept: Option<JoinHandle<()>>,
}

impl Router {
    pub fn start(addr: impl ToSocketAddrs, opts: RouterOptions) -> std::io::Result<Router> {
        if opts.backends.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "route: at least one backend is required",
            ));
        }
        if opts.backends.len() > MAX_BACKENDS {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("route: at most {MAX_BACKENDS} backends are supported"),
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(RouterShared {
            opts,
            stop: AtomicBool::new(false),
            reconnects: AtomicU64::new(0),
            jobs_rerouted: AtomicU64::new(0),
            peer_fills: AtomicU64::new(0),
            proto_v1: AtomicU64::new(0),
            proto_v2: AtomicU64::new(0),
            started: Instant::now(),
        });
        let accept_shared = shared.clone();
        let accept = thread::spawn(move || accept_loop(listener, local, accept_shared));
        Ok(Router {
            addr: local,
            shared,
            accept: Some(accept),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Backend connections declared lost so far (each loss triggers one
    /// failover pass for that connection's in-flight jobs).
    pub fn reconnects(&self) -> u64 {
        self.shared.reconnects.load(Ordering::Acquire)
    }

    /// In-flight jobs re-submitted to a new owner after a backend loss.
    pub fn jobs_rerouted(&self) -> u64 {
        self.shared.jobs_rerouted.load(Ordering::Acquire)
    }

    /// Submits answered from a peer backend's cache via `peek`.
    pub fn peer_fills(&self) -> u64 {
        self.shared.peer_fills.load(Ordering::Acquire)
    }

    /// Whether a `shutdown` verb has been received.
    pub fn is_stopping(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Block until a client sends `shutdown`.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Ask the acceptor to stop from this process.
    pub fn request_stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
        wake_acceptor(self.addr);
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.request_stop();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// The blocked `accept()` only returns when a connection arrives, so
/// the stop path opens (and immediately drops) one.
fn wake_acceptor(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

fn accept_loop(listener: TcpListener, local: SocketAddr, shared: Arc<RouterShared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Small JSON-lines frames; Nagle would add ~40ms per round-trip.
        let _ = stream.set_nodelay(true);
        let shared = shared.clone();
        thread::spawn(move || serve_connection(stream, local, shared));
    }
}

/// One routed job, keyed by its router id.
struct Routed {
    /// The original submission, kept so the job can be re-routed if its
    /// backend dies. `None` for jobs adopted via `attach` (the router
    /// never saw their spec) — those cannot be re-routed.
    spec: Option<SubmitSpec>,
    /// Routing key (raw instance key; see the peer-fill caveat in
    /// ARCHITECTURE.md — it matches the backend's ticket key under
    /// default queue options).
    key: InstanceKey,
    /// Whether the client wanted progress frames at submit time (the
    /// re-route resubscribes with the same flag).
    progress: bool,
    /// Owning backend; `None` while in transit during a re-route, and
    /// permanently for router-served jobs.
    backend: Option<String>,
    backend_job: u64,
    state: JobState,
    termination: Option<Termination>,
    cached: bool,
    /// Payload for router-served jobs (peer fill) and structured
    /// failures, answered locally by `result`.
    objective: Option<f64>,
    solution: Option<Value>,
    error: Option<String>,
}

struct ConnState {
    ring: ShardMap,
    links: HashMap<String, Arc<Link>>,
    jobs: HashMap<u64, Routed>,
    /// `(backend addr, backend job) -> router id`, the event remap.
    by_backend: HashMap<(String, u64), u64>,
    /// Backend events that raced ahead of their submit receipts.
    pending: Vec<(String, JobEvent)>,
    /// Sequence for router-served (`LOCAL_IDX`) job ids.
    local_seq: u64,
    /// Whether this client opted into `stats` event frames; sticky, and
    /// replayed onto every link (including ones dialed later).
    client_stats: bool,
}

struct Conn {
    shared: Arc<RouterShared>,
    outbox: Arc<Outbox>,
    dropped: Arc<AtomicU64>,
    state: Mutex<ConnState>,
    /// Serializes link dialing so two threads missing the same backend
    /// don't race a duplicate connection (and a duplicate pump).
    dial: Mutex<()>,
    /// Set at client teardown: pumps dying because *we* closed their
    /// sockets must not trigger failover.
    closing: AtomicBool,
}

/// One TCP connection to a backend. Requests are serialized by the
/// channel mutex; the pump thread owns the read half and feeds
/// responses back through `resp`.
struct Link {
    addr: String,
    alive: AtomicBool,
    /// A second handle on the socket so teardown can unblock the pump
    /// without waiting on the round-trip mutex.
    sock: TcpStream,
    chan: Mutex<LinkChannel>,
}

struct LinkChannel {
    writer: TcpStream,
    resp: mpsc::Receiver<Response>,
}

impl Link {
    fn roundtrip(&self, request: &Request) -> Result<Response, String> {
        if !self.alive.load(Ordering::Acquire) {
            return Err(format!("backend {} is down", self.addr));
        }
        let mut chan = self.chan.lock();
        let mut text =
            serde_json::to_string(request).expect("in-tree serde_json cannot fail to render");
        text.push('\n');
        chan.writer
            .write_all(text.as_bytes())
            .and_then(|_| chan.writer.flush())
            .map_err(|e| format!("backend {}: {e}", self.addr))?;
        match chan.resp.recv_timeout(LINK_TIMEOUT) {
            Ok(resp) => Ok(resp),
            Err(_) => Err(format!("backend {}: no response", self.addr)),
        }
    }

    fn close(&self) {
        self.alive.store(false, Ordering::Release);
        let _ = self.sock.shutdown(Shutdown::Both);
    }
}

/// Dial `addr`, negotiate protocol v2, and start its pump thread.
fn dial(conn: &Arc<Conn>, addr: &str) -> Result<Arc<Link>, String> {
    let io_err = |e: std::io::Error| format!("backend {addr}: {e}");
    let stream = TcpStream::connect(addr).map_err(io_err)?;
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone().map_err(io_err)?);
    let mut writer = stream.try_clone().map_err(io_err)?;
    let mut hello = serde_json::to_string(&Request::Hello {
        proto: PROTO_VERSION,
    })
    .expect("in-tree serde_json cannot fail to render");
    hello.push('\n');
    writer
        .write_all(hello.as_bytes())
        .and_then(|_| writer.flush())
        .map_err(io_err)?;
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(io_err)?;
    if n == 0 {
        return Err(format!("backend {addr} closed during handshake"));
    }
    match serde_json::from_str::<Response>(&line) {
        Ok(Response::Welcome { proto, .. }) if proto >= 2 => {}
        Ok(_) => return Err(format!("backend {addr} does not speak protocol v2")),
        Err(e) => return Err(format!("backend {addr}: bad handshake: {e}")),
    }
    let (tx, rx) = mpsc::channel();
    let link = Arc::new(Link {
        addr: addr.to_string(),
        alive: AtomicBool::new(true),
        sock: stream,
        chan: Mutex::new(LinkChannel { writer, resp: rx }),
    });
    let pump_conn = conn.clone();
    let pump_addr = addr.to_string();
    thread::spawn(move || pump(pump_conn, pump_addr, reader, tx));
    Ok(link)
}

/// The live link to `addr`, dialing one if needed.
fn ensure_link(conn: &Arc<Conn>, addr: &str) -> Result<Arc<Link>, String> {
    if let Some(l) = conn.state.lock().links.get(addr) {
        if l.alive.load(Ordering::Acquire) {
            return Ok(l.clone());
        }
    }
    let _guard = conn.dial.lock();
    if let Some(l) = conn.state.lock().links.get(addr) {
        if l.alive.load(Ordering::Acquire) {
            return Ok(l.clone());
        }
    }
    let link = dial(conn, addr)?;
    let want_stats = {
        let mut st = conn.state.lock();
        st.links.insert(addr.to_string(), link.clone());
        st.client_stats
    };
    if want_stats {
        let _ = link.roundtrip(&Request::Watch {
            jobs: vec![],
            progress: true,
            stats: true,
        });
    }
    Ok(link)
}

/// Reader thread for one backend link: routes responses to the waiting
/// round-trip and event frames into the client's outbox. EOF or a read
/// error declares the backend lost.
fn pump(
    conn: Arc<Conn>,
    addr: String,
    mut reader: BufReader<TcpStream>,
    resp: mpsc::Sender<Response>,
) {
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let Ok(value) = serde_json::from_str::<Value>(&line) else {
            continue;
        };
        if value.get("event").is_some() {
            if let Ok(ev) = serde_json::from_value::<JobEvent>(value) {
                on_backend_event(&conn, &addr, ev);
            }
        } else if let Ok(frame) = serde_json::from_value::<Response>(value) {
            // A dropped receiver means no round-trip is waiting; the
            // frame is stale (e.g. an answer after its timeout).
            let _ = resp.send(frame);
        }
    }
    fail_over(&conn, &addr);
}

/// Remap a backend push frame to router ids and forward it.
fn on_backend_event(conn: &Arc<Conn>, addr: &str, ev: JobEvent) {
    let mapped = {
        let mut st = conn.state.lock();
        match &ev {
            // Queue-level frames carry no job id; the outbox gates the
            // client's opt-in.
            JobEvent::Stats(_) => Some(ev.clone()),
            JobEvent::State {
                job,
                state,
                termination,
            } => match st.by_backend.get(&(addr.to_string(), *job)).copied() {
                Some(rid) => match st.jobs.get_mut(&rid) {
                    // Ignore frames from a backend this job was already
                    // moved away from.
                    Some(r) if r.backend.as_deref() == Some(addr) => {
                        r.state = *state;
                        r.termination = *termination;
                        Some(JobEvent::State {
                            job: rid,
                            state: *state,
                            termination: *termination,
                        })
                    }
                    _ => None,
                },
                // The receipt for this job is still in flight; buffer
                // the frame for replay once the mapping lands.
                None => {
                    if st.pending.len() < PENDING_EVENT_CAP {
                        st.pending.push((addr.to_string(), ev.clone()));
                    }
                    None
                }
            },
            JobEvent::Progress { job, frame } => st
                .by_backend
                .get(&(addr.to_string(), *job))
                .copied()
                .map(|rid| JobEvent::Progress {
                    job: rid,
                    frame: frame.clone(),
                }),
        }
    };
    if let Some(ev) = mapped {
        conn.outbox.push_event(&ev);
    }
}

/// Replay events that arrived before their submit receipts.
fn drain_pending(conn: &Arc<Conn>) {
    let pending = {
        let mut st = conn.state.lock();
        std::mem::take(&mut st.pending)
    };
    for (addr, ev) in pending {
        on_backend_event(conn, &addr, ev);
    }
}

/// Declare `addr` lost: drop it from this connection's ring and move
/// its in-flight jobs to the keys' new owners. Idempotent — the pump
/// and a failed round-trip may both report the same loss.
fn fail_over(conn: &Arc<Conn>, addr: &str) {
    if conn.closing.load(Ordering::Acquire) {
        return;
    }
    let affected = {
        let mut st = conn.state.lock();
        let link = st.links.remove(addr);
        let on_ring = st.ring.nodes().iter().any(|n| n == addr);
        if link.is_none() && !on_ring {
            return; // already handled
        }
        if let Some(l) = &link {
            l.close();
        }
        st.ring = st.ring.without(addr);
        st.by_backend.retain(|(a, _), _| a != addr);
        st.pending.retain(|(a, _)| a != addr);
        let mut affected = Vec::new();
        for (&rid, r) in st.jobs.iter_mut() {
            if r.backend.as_deref() == Some(addr) && !r.state.is_terminal() {
                r.backend = None;
                affected.push(rid);
            }
        }
        affected
    };
    let total = conn.shared.reconnects.fetch_add(1, Ordering::AcqRel) + 1;
    eprintln!(
        "route: backend {addr} lost; re-routing {} job(s) (reconnects={total})",
        affected.len()
    );
    if affected.is_empty() {
        return;
    }
    conn.shared
        .jobs_rerouted
        .fetch_add(affected.len() as u64, Ordering::Relaxed);
    resubmit(conn, affected);
}

/// Move jobs whose backend died to the ring's new owners, keeping
/// their router ids (the event remap absorbs the new backend ids).
fn resubmit(conn: &Arc<Conn>, rids: Vec<u64>) {
    for rid in rids {
        let planned = {
            let st = conn.state.lock();
            st.jobs.get(&rid).map(|r| (r.spec.clone(), r.key, r.progress))
        };
        let Some((spec, key, progress)) = planned else {
            continue;
        };
        let Some(spec) = spec else {
            fail_job(
                conn,
                rid,
                "backend lost; job was adopted via attach and cannot be re-routed",
            );
            continue;
        };
        let mut overload_tries = 0u32;
        loop {
            let owner = {
                let st = conn.state.lock();
                if st.ring.is_empty() {
                    None
                } else {
                    Some(st.ring.owner(key.0).to_string())
                }
            };
            let Some(owner) = owner else {
                fail_job(conn, rid, "backend lost and no live replacement remains");
                break;
            };
            let link = match ensure_link(conn, &owner) {
                Ok(l) => l,
                Err(_) => {
                    fail_over(conn, &owner);
                    continue;
                }
            };
            match link.roundtrip(&Request::SubmitBatch {
                jobs: vec![spec.clone()],
                watch: true,
                progress,
            }) {
                Ok(Response::BatchSubmitted { jobs }) if jobs.len() == 1 => {
                    let receipt = &jobs[0];
                    let recorded = {
                        let mut st = conn.state.lock();
                        // The pump may have declared this very owner
                        // lost between the response and here; recording
                        // then would strand the job on a dead backend.
                        if link.alive.load(Ordering::Acquire) {
                            st.by_backend.insert((owner.clone(), receipt.job), rid);
                            if let Some(r) = st.jobs.get_mut(&rid) {
                                r.backend = Some(owner.clone());
                                r.backend_job = receipt.job;
                                if receipt.state.is_terminal() {
                                    r.state = receipt.state;
                                    r.cached = receipt.cached;
                                }
                            }
                            true
                        } else {
                            false
                        }
                    };
                    if !recorded {
                        continue;
                    }
                    if receipt.state.is_terminal() {
                        conn.outbox.push_event(&JobEvent::State {
                            job: rid,
                            state: receipt.state,
                            termination: None,
                        });
                    }
                    drain_pending(conn);
                    break;
                }
                Ok(Response::Overloaded {
                    message,
                    retry_after_ms,
                    ..
                }) => {
                    overload_tries += 1;
                    if overload_tries >= OVERLOAD_RETRIES {
                        fail_job(conn, rid, &message);
                        break;
                    }
                    thread::sleep(Duration::from_millis(retry_after_ms.clamp(1, 1000)));
                }
                Ok(Response::Error { message }) => {
                    fail_job(conn, rid, &message);
                    break;
                }
                Ok(_) => {
                    fail_job(conn, rid, "unexpected response to re-routed submit");
                    break;
                }
                Err(_) => {
                    fail_over(conn, &owner);
                    continue;
                }
            }
        }
    }
}

/// Terminate `rid` in the structured `failed` state at the router.
fn fail_job(conn: &Arc<Conn>, rid: u64, msg: &str) {
    {
        let mut st = conn.state.lock();
        let Some(r) = st.jobs.get_mut(&rid) else { return };
        if r.state.is_terminal() {
            return;
        }
        r.state = JobState::Failed;
        r.error = Some(msg.to_string());
        r.backend = None;
    }
    conn.outbox.push_event(&JobEvent::State {
        job: rid,
        state: JobState::Failed,
        termination: None,
    });
}

fn idx_of(shared: &RouterShared, addr: &str) -> usize {
    shared
        .opts
        .backends
        .iter()
        .position(|b| b == addr)
        .expect("ring owners come from the configured backend list")
}

fn alloc_local(st: &mut ConnState) -> u64 {
    let rid = encode(st.local_seq, LOCAL_IDX);
    st.local_seq += 1;
    rid
}

/// Cancel-and-forget receipts and drop tracking for a batch a hot
/// shard forced us to shed — a batch is admitted or shed *whole*, at
/// the router exactly like at a single daemon.
fn rollback(conn: &Arc<Conn>, created: &[u64], submitted: &[(Arc<Link>, u64)]) {
    for (link, backend_job) in submitted {
        let _ = link.roundtrip(&Request::Cancel { job: *backend_job });
    }
    let mut st = conn.state.lock();
    for rid in created {
        st.jobs.remove(rid);
    }
    st.by_backend.retain(|_, rid| !created.contains(rid));
}

/// The fan-out path behind `submit` and `submit_batch`.
fn handle_submit_batch(
    conn: &Arc<Conn>,
    specs: Vec<SubmitSpec>,
    watch: bool,
    progress: bool,
) -> Response {
    if specs.is_empty() {
        return Response::BatchSubmitted { jobs: vec![] };
    }
    let keys: Vec<InstanceKey> = specs
        .iter()
        .map(|s| instance_key(&s.design, &s.board, &s.config))
        .collect();
    let n = specs.len();
    let mut slots: Vec<Option<SubmitReceipt>> = (0..n).map(|_| None).collect();
    // Rollback ledger, in case a hot shard sheds the batch.
    let mut created: Vec<u64> = Vec::new();
    let mut submitted: Vec<(Arc<Link>, u64)> = Vec::new();

    // Peer cache-fill: before paying a solve, ask the key's previous
    // owner — the node that owned it before the last ring resize —
    // whether it already holds the answer. `peek` never promotes or
    // counts, so misses leave the peer's cache untouched.
    if conn.shared.opts.peer_fill {
        for i in 0..n {
            let prev = {
                let st = conn.state.lock();
                st.ring.previous_owner(keys[i].0).map(str::to_string)
            };
            // `None` iff fewer than two nodes remain — no peers at all.
            let Some(prev) = prev else { break };
            let Ok(link) = ensure_link(conn, &prev) else {
                continue;
            };
            let Ok(Response::Peeked {
                hit: true,
                objective,
                solution,
            }) = link.roundtrip(&Request::Peek {
                key: keys[i].to_hex(),
            })
            else {
                continue;
            };
            let rid = {
                let mut st = conn.state.lock();
                let rid = alloc_local(&mut st);
                st.jobs.insert(
                    rid,
                    Routed {
                        spec: Some(specs[i].clone()),
                        key: keys[i],
                        progress,
                        backend: None,
                        backend_job: 0,
                        state: JobState::Done,
                        termination: None,
                        cached: true,
                        objective,
                        solution,
                        error: None,
                    },
                );
                rid
            };
            conn.shared.peer_fills.fetch_add(1, Ordering::Relaxed);
            created.push(rid);
            slots[i] = Some(SubmitReceipt {
                job: rid,
                state: JobState::Done,
                cached: true,
                key: keys[i].to_hex(),
            });
        }
    }

    // Route the rest to their ring owners, one sub-batch per backend.
    // A lost backend shrinks the ring and sends its indices back
    // through the loop for the new owners.
    let mut queue: Vec<usize> = (0..n).filter(|&i| slots[i].is_none()).collect();
    while !queue.is_empty() {
        let grouped: Option<Vec<(String, Vec<usize>)>> = {
            let st = conn.state.lock();
            if st.ring.is_empty() {
                None
            } else {
                let mut by_owner: Vec<(String, Vec<usize>)> = Vec::new();
                for &i in &queue {
                    let owner = st.ring.owner(keys[i].0).to_string();
                    match by_owner.iter_mut().find(|(a, _)| *a == owner) {
                        Some((_, v)) => v.push(i),
                        None => by_owner.push((owner, vec![i])),
                    }
                }
                Some(by_owner)
            }
        };
        let Some(grouped) = grouped else {
            rollback(conn, &created, &submitted);
            return Response::Error {
                message: "route: no live backend to route to".into(),
            };
        };
        queue.clear();
        for (owner, idxs) in grouped {
            let link = match ensure_link(conn, &owner) {
                Ok(l) => l,
                Err(_) => {
                    fail_over(conn, &owner);
                    queue.extend(idxs);
                    continue;
                }
            };
            let request = Request::SubmitBatch {
                jobs: idxs.iter().map(|&i| specs[i].clone()).collect(),
                watch: true,
                progress,
            };
            let mut overload_tries = 0u32;
            loop {
                match link.roundtrip(&request) {
                    Ok(Response::BatchSubmitted { jobs }) if jobs.len() == idxs.len() => {
                        let bidx = idx_of(&conn.shared, &owner);
                        let recorded = {
                            let mut st = conn.state.lock();
                            // If the pump just declared this owner lost,
                            // recording would strand the jobs; requeue
                            // them for the shrunken ring instead.
                            if link.alive.load(Ordering::Acquire) {
                                for (&i, receipt) in idxs.iter().zip(&jobs) {
                                    let rid = encode(receipt.job, bidx);
                                    st.jobs.insert(
                                        rid,
                                        Routed {
                                            spec: Some(specs[i].clone()),
                                            key: keys[i],
                                            progress,
                                            backend: Some(owner.clone()),
                                            backend_job: receipt.job,
                                            state: receipt.state,
                                            termination: None,
                                            cached: receipt.cached,
                                            objective: None,
                                            solution: None,
                                            error: None,
                                        },
                                    );
                                    st.by_backend.insert((owner.clone(), receipt.job), rid);
                                    created.push(rid);
                                    submitted.push((link.clone(), receipt.job));
                                    slots[i] = Some(SubmitReceipt {
                                        job: rid,
                                        state: receipt.state,
                                        cached: receipt.cached,
                                        key: receipt.key.clone(),
                                    });
                                }
                                true
                            } else {
                                false
                            }
                        };
                        if recorded {
                            drain_pending(conn);
                        } else {
                            queue.extend(idxs.iter().copied());
                        }
                        break;
                    }
                    Ok(Response::Overloaded {
                        message,
                        inflight,
                        max_inflight,
                        retry_after_ms,
                    }) => {
                        overload_tries += 1;
                        if overload_tries >= OVERLOAD_RETRIES {
                            // Propagate the structured rejection: the
                            // hot shard sheds this client's load while
                            // other routers' cold shards keep working.
                            rollback(conn, &created, &submitted);
                            return Response::Overloaded {
                                message,
                                inflight,
                                max_inflight,
                                retry_after_ms,
                            };
                        }
                        thread::sleep(Duration::from_millis(retry_after_ms.clamp(1, 1000)));
                    }
                    Ok(Response::Error { message }) => {
                        // The backend rejected these specs outright;
                        // surface per-job structured failures.
                        let mut st = conn.state.lock();
                        for &i in &idxs {
                            let rid = alloc_local(&mut st);
                            st.jobs.insert(
                                rid,
                                Routed {
                                    spec: Some(specs[i].clone()),
                                    key: keys[i],
                                    progress,
                                    backend: None,
                                    backend_job: 0,
                                    state: JobState::Failed,
                                    termination: None,
                                    cached: false,
                                    objective: None,
                                    solution: None,
                                    error: Some(message.clone()),
                                },
                            );
                            created.push(rid);
                            slots[i] = Some(SubmitReceipt {
                                job: rid,
                                state: JobState::Failed,
                                cached: false,
                                key: keys[i].to_hex(),
                            });
                        }
                        break;
                    }
                    Ok(_) | Err(_) => {
                        fail_over(conn, &owner);
                        queue.extend(idxs.iter().copied());
                        break;
                    }
                }
            }
        }
    }

    // Register the watch only now that every sub-batch landed: doing it
    // earlier would leak `queued` frames for jobs an overload rollback
    // then removes. The snapshot frame each registration pushes carries
    // whatever state the job has *now*, so nothing is lost — a backend
    // transition in the gap is simply folded into the snapshot.
    if watch {
        let rids: Vec<u64> = slots
            .iter()
            .map(|s| s.as_ref().expect("every slot is filled").job)
            .collect();
        let st = conn.state.lock();
        conn.outbox.watch(&rids, progress, |job| {
            st.jobs.get(&job).map(|r| (r.state, r.termination))
        });
    }
    drain_pending(conn);
    Response::BatchSubmitted {
        jobs: slots
            .into_iter()
            .map(|s| s.expect("every slot is filled"))
            .collect(),
    }
}

/// Turn on `stats` event forwarding for this client: tag the outbox
/// and subscribe every live link (new links subscribe on dial).
fn enable_stats(conn: &Arc<Conn>) {
    let links: Vec<Arc<Link>> = {
        let mut st = conn.state.lock();
        if st.client_stats {
            return;
        }
        st.client_stats = true;
        st.links.values().cloned().collect()
    };
    conn.outbox.set_stats(true);
    for link in links {
        let _ = link.roundtrip(&Request::Watch {
            jobs: vec![],
            progress: true,
            stats: true,
        });
    }
}

fn handle_watch(conn: &Arc<Conn>, jobs: Vec<u64>, progress: bool, stats: bool) -> Response {
    if stats {
        enable_stats(conn);
    }
    let st = conn.state.lock();
    let known: Vec<u64> = jobs
        .iter()
        .copied()
        .filter(|rid| st.jobs.contains_key(rid))
        .collect();
    let unknown: Vec<u64> = jobs
        .iter()
        .copied()
        .filter(|rid| !st.jobs.contains_key(rid))
        .collect();
    let (watching, _) = conn.outbox.watch(&known, progress, |job| {
        st.jobs.get(&job).map(|r| (r.state, r.termination))
    });
    Response::Watching { watching, unknown }
}

/// A connection that never issued `rid` can still attach to it: the id
/// embeds the issuing backend, so the router adopts the job by
/// forwarding `attach` there. This is what lets a client resume its
/// stream through a *router* restart, not just a backend one.
fn adopt(conn: &Arc<Conn>, rid: u64) -> Option<AttachSnapshot> {
    let (backend_job, idx) = decode(rid);
    if idx >= conn.shared.opts.backends.len() {
        return None;
    }
    let addr = conn.shared.opts.backends[idx].clone();
    let live = {
        let st = conn.state.lock();
        st.ring.nodes().contains(&addr)
    };
    if !live {
        return None;
    }
    let link = ensure_link(conn, &addr).ok()?;
    match link.roundtrip(&Request::Attach {
        jobs: vec![backend_job],
        progress: true,
        stats: false,
    }) {
        Ok(Response::Attached { attached, .. }) if attached.len() == 1 => {
            let snap = attached[0];
            {
                let mut st = conn.state.lock();
                st.jobs.insert(
                    rid,
                    Routed {
                        spec: None,
                        key: InstanceKey(0),
                        progress: true,
                        backend: Some(addr.clone()),
                        backend_job,
                        state: snap.state,
                        termination: snap.termination,
                        cached: false,
                        objective: None,
                        solution: None,
                        error: None,
                    },
                );
                st.by_backend.insert((addr, backend_job), rid);
            }
            drain_pending(conn);
            Some(AttachSnapshot {
                job: rid,
                state: snap.state,
                termination: snap.termination,
            })
        }
        _ => None,
    }
}

fn handle_attach(conn: &Arc<Conn>, jobs: Vec<u64>, progress: bool, stats: bool) -> Response {
    if stats {
        enable_stats(conn);
    }
    let mut attached: Vec<AttachSnapshot> = Vec::new();
    let mut unknown: Vec<u64> = Vec::new();
    let mut register: Vec<u64> = Vec::new();
    for rid in jobs {
        let known = {
            let st = conn.state.lock();
            st.jobs.get(&rid).map(|r| (r.state, r.termination))
        };
        if let Some((state, termination)) = known {
            attached.push(AttachSnapshot {
                job: rid,
                state,
                termination,
            });
            register.push(rid);
            continue;
        }
        match adopt(conn, rid) {
            Some(snap) => {
                attached.push(snap);
                register.push(rid);
            }
            None => unknown.push(rid),
        }
    }
    {
        let st = conn.state.lock();
        conn.outbox.watch(&register, progress, |job| {
            st.jobs.get(&job).map(|r| (r.state, r.termination))
        });
    }
    Response::Attached { attached, unknown }
}

enum JobVerb {
    Poll,
    Result,
    Cancel,
}

/// Forward a v1-style per-job verb to the owning backend, remapping
/// ids both ways. Router-served jobs answer locally; ids unknown to
/// this connection forward statelessly via the id encoding.
fn forward_job_verb(conn: &Arc<Conn>, rid: u64, verb: JobVerb) -> Response {
    let route = {
        let st = conn.state.lock();
        match st.jobs.get(&rid) {
            Some(r) if r.backend.is_none() => {
                return match verb {
                    JobVerb::Poll => Response::PollState {
                        job: rid,
                        state: r.state,
                    },
                    JobVerb::Cancel => Response::CancelState {
                        job: rid,
                        state: r.state,
                    },
                    JobVerb::Result => Response::ResultReady {
                        job: rid,
                        state: r.state,
                        cached: r.cached,
                        objective: r.objective,
                        solution: r.solution.clone(),
                        error: r.error.clone(),
                    },
                };
            }
            Some(r) => Some((r.backend.clone().expect("checked above"), r.backend_job)),
            None => None,
        }
    };
    let (addr, backend_job) = match route {
        Some(pair) => pair,
        None => {
            let (backend_job, idx) = decode(rid);
            if idx >= conn.shared.opts.backends.len() {
                return Response::Error {
                    message: format!("unknown job {rid}"),
                };
            }
            (conn.shared.opts.backends[idx].clone(), backend_job)
        }
    };
    let link = match ensure_link(conn, &addr) {
        Ok(l) => l,
        Err(_) => return recover_job_verb(conn, rid, &addr, verb),
    };
    let request = match verb {
        JobVerb::Poll => Request::Poll { job: backend_job },
        JobVerb::Result => Request::Result { job: backend_job },
        JobVerb::Cancel => Request::Cancel { job: backend_job },
    };
    match link.roundtrip(&request) {
        Ok(resp) => remap_job(resp, rid),
        Err(_) => recover_job_verb(conn, rid, &addr, verb),
    }
}

/// A job verb hit a dead backend: declare the loss (re-routing its
/// in-flight jobs), then answer as well as the router can. `poll` and
/// `cancel` answer from the local record; `result` for a job whose
/// *completed* solution died with its backend re-solves the retained
/// spec on the key's new owner — the instance is content-addressed and
/// the solver deterministic, so the recomputed answer is the answer.
fn recover_job_verb(conn: &Arc<Conn>, rid: u64, addr: &str, verb: JobVerb) -> Response {
    fail_over(conn, addr);
    let snapshot = {
        let st = conn.state.lock();
        st.jobs
            .get(&rid)
            .map(|r| (r.state, r.cached, r.backend.clone()))
    };
    let Some((state, cached, backend)) = snapshot else {
        return Response::Error {
            message: format!("backend {addr} is down and job {rid} is not known here"),
        };
    };
    // The failover pass may already have moved the job to a live
    // backend; if so, just forward there (bounded recursion — each
    // round removes a dead backend from the ring).
    if let Some(new_addr) = backend {
        if new_addr != addr {
            return forward_job_verb(conn, rid, verb);
        }
    }
    match verb {
        JobVerb::Poll => Response::PollState { job: rid, state },
        JobVerb::Cancel => Response::CancelState { job: rid, state },
        JobVerb::Result => match resolve_result(conn, rid) {
            Some(resp) => resp,
            None => Response::ResultReady {
                job: rid,
                state,
                cached,
                objective: None,
                solution: None,
                error: Some(format!(
                    "backend {addr} was lost; the solution could not be recovered"
                )),
            },
        },
    }
}

/// Recompute a lost result: submit the retained spec to the key's
/// current owner (no watch — the client already saw the terminal
/// state) and poll until the solve lands, bounded by [`LINK_TIMEOUT`].
fn resolve_result(conn: &Arc<Conn>, rid: u64) -> Option<Response> {
    let (spec, key) = {
        let st = conn.state.lock();
        let r = st.jobs.get(&rid)?;
        (r.spec.clone()?, r.key)
    };
    let deadline = Instant::now() + LINK_TIMEOUT;
    'owners: while Instant::now() < deadline {
        let owner = {
            let st = conn.state.lock();
            if st.ring.is_empty() {
                return None;
            }
            st.ring.owner(key.0).to_string()
        };
        let Ok(link) = ensure_link(conn, &owner) else {
            fail_over(conn, &owner);
            continue;
        };
        let bjob = match link.roundtrip(&Request::SubmitBatch {
            jobs: vec![spec.clone()],
            watch: false,
            progress: false,
        }) {
            Ok(Response::BatchSubmitted { jobs }) if jobs.len() == 1 => jobs[0].job,
            Ok(Response::Overloaded { retry_after_ms, .. }) => {
                thread::sleep(Duration::from_millis(retry_after_ms.clamp(1, 1000)));
                continue;
            }
            Ok(_) => return None,
            Err(_) => {
                fail_over(conn, &owner);
                continue;
            }
        };
        {
            let mut st = conn.state.lock();
            if !link.alive.load(Ordering::Acquire) {
                continue;
            }
            st.by_backend.insert((owner.clone(), bjob), rid);
            if let Some(r) = st.jobs.get_mut(&rid) {
                r.backend = Some(owner.clone());
                r.backend_job = bjob;
            }
        }
        while Instant::now() < deadline {
            match link.roundtrip(&Request::Result { job: bjob }) {
                Ok(Response::ResultReady { state, .. }) if !state.is_terminal() => {
                    thread::sleep(Duration::from_millis(25));
                }
                Ok(resp @ Response::ResultReady { state, .. }) => {
                    let mut st = conn.state.lock();
                    if let Some(r) = st.jobs.get_mut(&rid) {
                        r.state = state;
                    }
                    return Some(remap_job(resp, rid));
                }
                Ok(_) => return None,
                Err(_) => {
                    fail_over(conn, &owner);
                    continue 'owners;
                }
            }
        }
    }
    None
}

/// Rewrite the job id in a forwarded response back to the router id.
fn remap_job(resp: Response, rid: u64) -> Response {
    match resp {
        Response::PollState { state, .. } => Response::PollState { job: rid, state },
        Response::CancelState { state, .. } => Response::CancelState { job: rid, state },
        Response::ResultReady {
            state,
            cached,
            objective,
            solution,
            error,
            ..
        } => Response::ResultReady {
            job: rid,
            state,
            cached,
            objective,
            solution,
            error,
        },
        other => other,
    }
}

fn handle_peek(conn: &Arc<Conn>, key: &str) -> Response {
    let Some(parsed) = InstanceKey::from_hex(key) else {
        return Response::Error {
            message: format!("peek: `{key}` is not a 32-hex-digit instance key"),
        };
    };
    let owner = {
        let st = conn.state.lock();
        if st.ring.is_empty() {
            None
        } else {
            Some(st.ring.owner(parsed.0).to_string())
        }
    };
    let Some(owner) = owner else {
        return Response::Error {
            message: "route: no live backend to route to".into(),
        };
    };
    let link = match ensure_link(conn, &owner) {
        Ok(l) => l,
        Err(e) => return Response::Error { message: e },
    };
    match link.roundtrip(&Request::Peek {
        key: key.to_string(),
    }) {
        Ok(resp) => resp,
        Err(e) => Response::Error { message: e },
    }
}

fn zero_stats() -> ServiceStats {
    ServiceStats {
        jobs_submitted: 0,
        jobs_completed: 0,
        jobs_failed: 0,
        jobs_cancelled: 0,
        jobs_deadline: 0,
        jobs_pruned: 0,
        retain_jobs: 0,
        cache_hits: 0,
        cache_misses: 0,
        cache_entries: 0,
        cache_evictions: 0,
        cache_cap: 0,
        workers: 0,
        uptime_ms: 0,
        proto_versions: ProtoVersions::default(),
        events_dropped: 0,
        lp_iterations: 0,
        refactorizations: 0,
        eta_nnz_peak: 0,
        disk_entries: 0,
        disk_hits: 0,
        disk_misses: 0,
        disk_corrupt: 0,
        hint_entries: 0,
        hint_hits: 0,
        hint_misses: 0,
        incumbent_seeded: 0,
        heuristic_solved: 0,
        heuristic_seeded: 0,
        heuristic_infeasible: 0,
        queue_depth: 0,
        latency_p50_ms: 0,
        latency_p95_ms: 0,
    }
}

/// Fold one backend's stats into the aggregate: counters and gauges
/// sum; latency percentiles take the worst shard (a sum would be
/// meaningless and an average would hide the hot shard).
fn add_stats(agg: &mut ServiceStats, s: &ServiceStats) {
    agg.jobs_submitted += s.jobs_submitted;
    agg.jobs_completed += s.jobs_completed;
    agg.jobs_failed += s.jobs_failed;
    agg.jobs_cancelled += s.jobs_cancelled;
    agg.jobs_deadline += s.jobs_deadline;
    agg.jobs_pruned += s.jobs_pruned;
    agg.retain_jobs += s.retain_jobs;
    agg.cache_hits += s.cache_hits;
    agg.cache_misses += s.cache_misses;
    agg.cache_entries += s.cache_entries;
    agg.cache_evictions += s.cache_evictions;
    agg.cache_cap += s.cache_cap;
    agg.workers += s.workers;
    agg.uptime_ms = agg.uptime_ms.max(s.uptime_ms);
    agg.events_dropped += s.events_dropped;
    agg.lp_iterations += s.lp_iterations;
    agg.refactorizations += s.refactorizations;
    agg.eta_nnz_peak = agg.eta_nnz_peak.max(s.eta_nnz_peak);
    agg.disk_entries += s.disk_entries;
    agg.disk_hits += s.disk_hits;
    agg.disk_misses += s.disk_misses;
    agg.disk_corrupt += s.disk_corrupt;
    agg.hint_entries += s.hint_entries;
    agg.hint_hits += s.hint_hits;
    agg.hint_misses += s.hint_misses;
    agg.incumbent_seeded += s.incumbent_seeded;
    agg.heuristic_solved += s.heuristic_solved;
    agg.heuristic_seeded += s.heuristic_seeded;
    agg.heuristic_infeasible += s.heuristic_infeasible;
    agg.queue_depth += s.queue_depth;
    agg.latency_p50_ms = agg.latency_p50_ms.max(s.latency_p50_ms);
    agg.latency_p95_ms = agg.latency_p95_ms.max(s.latency_p95_ms);
}

/// Aggregate `stats` across every live backend, plus the router's own
/// connection counters and uptime.
fn handle_stats(conn: &Arc<Conn>) -> Response {
    let addrs: Vec<String> = {
        let st = conn.state.lock();
        st.ring.nodes().to_vec()
    };
    let mut agg = zero_stats();
    for addr in addrs {
        let Ok(link) = ensure_link(conn, &addr) else {
            continue;
        };
        if let Ok(Response::Stats(s)) = link.roundtrip(&Request::Stats) {
            add_stats(&mut agg, &s);
        }
    }
    agg.proto_versions = ProtoVersions {
        v1: conn.shared.proto_v1.load(Ordering::Relaxed),
        v2: conn.shared.proto_v2.load(Ordering::Relaxed),
    };
    agg.uptime_ms = conn.shared.started.elapsed().as_millis() as u64;
    agg.events_dropped += conn.dropped.load(Ordering::Relaxed);
    Response::Stats(agg)
}

/// v1 clients cannot parse the structured `overloaded` answer; demote
/// it to a plain error for them.
fn demote(resp: Response, v2: bool) -> Response {
    match resp {
        Response::Overloaded { message, .. } if !v2 => Response::Error { message },
        other => other,
    }
}

fn push_response(outbox: &Outbox, response: &Response) {
    let text = serde_json::to_string(response).unwrap_or_else(|_| {
        r#"{"ok":false,"message":"internal: response failed to render"}"#.to_string()
    });
    outbox.push_response(text);
}

/// The writer half of one client connection (same discipline as the
/// daemon's): drain the outbox until it closes or the peer goes away.
fn writer_loop(mut stream: TcpStream, outbox: &Outbox) {
    loop {
        match outbox.pop(None) {
            Popped::Frame(frame) => {
                let mut text = match frame {
                    Frame::Response(line) => line,
                    Frame::Event(ev) => serde_json::to_string(&ev).unwrap_or_else(|_| {
                        r#"{"event":"error","message":"internal: event failed to render"}"#
                            .to_string()
                    }),
                };
                text.push('\n');
                if stream
                    .write_all(text.as_bytes())
                    .and_then(|_| stream.flush())
                    .is_err()
                {
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
            Popped::Closed => return,
            Popped::TimedOut => unreachable!("writer pops without a deadline"),
        }
    }
}

fn serve_connection(stream: TcpStream, local: SocketAddr, shared: Arc<RouterShared>) {
    let Ok(peer_writer) = stream.try_clone() else {
        return;
    };
    let dropped = Arc::new(AtomicU64::new(0));
    let outbox = Arc::new(Outbox::new(EVENT_QUEUE_CAP, dropped.clone()));
    let conn = Arc::new(Conn {
        shared: shared.clone(),
        outbox: outbox.clone(),
        dropped,
        state: Mutex::new(ConnState {
            ring: ShardMap::new(&shared.opts.backends, shared.opts.vnodes),
            links: HashMap::new(),
            jobs: HashMap::new(),
            by_backend: HashMap::new(),
            pending: Vec::new(),
            local_seq: 0,
            client_stats: false,
        }),
        dial: Mutex::new(()),
        closing: AtomicBool::new(false),
    });
    let writer_outbox = outbox.clone();
    let writer = thread::spawn(move || writer_loop(peer_writer, &writer_outbox));
    let mut reader = BufReader::new(stream);
    let mut counted = false;
    let mut negotiated_v2 = false;
    let mut line = String::new();
    loop {
        line.clear();
        let Ok(n) = reader.read_line(&mut line) else {
            break;
        };
        if n == 0 {
            break;
        }
        if line.trim().is_empty() {
            continue;
        }
        let request = match serde_json::from_str::<Request>(&line) {
            Ok(r) => r,
            Err(e) => {
                push_response(
                    &outbox,
                    &Response::Error {
                        message: format!("bad request: {e}"),
                    },
                );
                continue;
            }
        };
        if !counted {
            counted = true;
            if matches!(request, Request::Hello { proto } if proto >= 2) {
                shared.proto_v2.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.proto_v1.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut shutting_down = false;
        let response = match request {
            Request::Hello { proto } => {
                let negotiated = proto.clamp(1, PROTO_VERSION);
                negotiated_v2 = negotiated >= 2;
                Response::Welcome {
                    proto: negotiated,
                    capabilities: CAPABILITIES.iter().map(|c| c.to_string()).collect(),
                }
            }
            Request::Submit {
                design,
                board,
                config,
                deadline_ms,
            } => {
                let spec = SubmitSpec {
                    design,
                    board,
                    config,
                    deadline_ms,
                };
                match handle_submit_batch(&conn, vec![spec], false, true) {
                    Response::BatchSubmitted { jobs } => {
                        let r = jobs
                            .into_iter()
                            .next()
                            .expect("one receipt per submitted spec");
                        Response::Submitted {
                            job: r.job,
                            state: r.state,
                            cached: r.cached,
                            key: r.key,
                        }
                    }
                    other => demote(other, negotiated_v2),
                }
            }
            Request::SubmitBatch {
                jobs,
                watch,
                progress,
            } => demote(
                handle_submit_batch(&conn, jobs, watch, progress),
                negotiated_v2,
            ),
            Request::Watch {
                jobs,
                progress,
                stats,
            } => handle_watch(&conn, jobs, progress, stats),
            Request::Attach {
                jobs,
                progress,
                stats,
            } => handle_attach(&conn, jobs, progress, stats),
            Request::Peek { key } => handle_peek(&conn, &key),
            Request::Poll { job } => forward_job_verb(&conn, job, JobVerb::Poll),
            Request::Result { job } => forward_job_verb(&conn, job, JobVerb::Result),
            Request::Cancel { job } => forward_job_verb(&conn, job, JobVerb::Cancel),
            Request::Stats => handle_stats(&conn),
            Request::Shutdown => {
                shutting_down = true;
                Response::Bye
            }
        };
        push_response(&outbox, &response);
        if shutting_down {
            shared.stop.store(true, Ordering::Release);
            wake_acceptor(local);
            break;
        }
    }
    // Teardown: our link closures must not read as backend losses.
    conn.closing.store(true, Ordering::Release);
    let links: Vec<Arc<Link>> = conn.state.lock().links.values().cloned().collect();
    for link in links {
        link.close();
    }
    outbox.close();
    let _ = writer.join();
}

#[cfg(test)]
mod tests {
    use super::*;

    use gmm_service::client::Session;
    use gmm_service::queue::{JobConfig, JobQueue, QueueOptions};
    use gmm_service::server::MapServer;
    use gmm_workloads::{random_design, RandomDesignSpec};

    fn board() -> gmm_arch::Board {
        gmm_arch::Board::prototyping("XCV300", 1).unwrap()
    }

    fn spec(seed: u64) -> SubmitSpec {
        let design = random_design(&RandomDesignSpec {
            segments: 4,
            seed,
            ..RandomDesignSpec::default()
        });
        SubmitSpec::new(design, board(), JobConfig::default())
    }

    fn start_backend() -> MapServer {
        let mut opts = QueueOptions::default();
        opts.workers = 2;
        MapServer::start("127.0.0.1:0", Arc::new(JobQueue::new(opts))).unwrap()
    }

    #[test]
    fn routes_across_backends_and_streams_events() {
        let a = start_backend();
        let b = start_backend();
        let backends = vec![a.local_addr().to_string(), b.local_addr().to_string()];
        let router = Router::start("127.0.0.1:0", RouterOptions::new(backends)).unwrap();
        let mut session = Session::connect(router.local_addr()).unwrap();
        let specs: Vec<SubmitSpec> = (0..6).map(spec).collect();
        let receipts = session.submit_batch(specs).unwrap();
        assert_eq!(receipts.len(), 6);
        let outcomes = session.wait_all(Duration::from_secs(120)).unwrap();
        assert_eq!(outcomes.len(), 6);
        for out in &outcomes {
            assert_eq!(out.state, JobState::Done);
        }
        // The two daemons together solved every job exactly once.
        let total = a.queue().stats().submitted + b.queue().stats().submitted;
        assert_eq!(total, 6);
        // Per-job verbs round-trip through the router by router id.
        let out = session.result(receipts[0].job).unwrap();
        assert_eq!(out.state, JobState::Done);
        assert!(out.objective.is_some());
        router.request_stop();
    }

    /// A scripted backend that sheds every submission, for deterministic
    /// overload propagation (a real queue only rejects under live load).
    fn overloaded_stub() -> (SocketAddr, thread::JoinHandle<u32>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = thread::spawn(move || {
            let mut rejected = 0u32;
            let Ok((stream, _)) = listener.accept() else {
                return rejected;
            };
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            loop {
                line.clear();
                let Ok(n) = reader.read_line(&mut line) else {
                    return rejected;
                };
                if n == 0 {
                    return rejected;
                }
                if line.trim().is_empty() {
                    continue;
                }
                let req: Request = serde_json::from_str(&line).unwrap();
                let resp = match req {
                    Request::Hello { .. } => Response::Welcome {
                        proto: 2,
                        capabilities: vec![],
                    },
                    Request::Watch { .. } => Response::Watching {
                        watching: vec![],
                        unknown: vec![],
                    },
                    Request::SubmitBatch { .. } => {
                        rejected += 1;
                        Response::Overloaded {
                            message: "mapsrv overloaded: 1/1 jobs in flight".into(),
                            inflight: 1,
                            max_inflight: 1,
                            retry_after_ms: 5,
                        }
                    }
                    Request::Cancel { job } => Response::CancelState {
                        job,
                        state: JobState::Cancelled,
                    },
                    _ => Response::Error {
                        message: "unexpected verb".into(),
                    },
                };
                let mut text = serde_json::to_string(&resp).unwrap();
                text.push('\n');
                if writer
                    .write_all(text.as_bytes())
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    return rejected;
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn overload_propagates_with_retry_hint() {
        let (addr, stub) = overloaded_stub();
        let router =
            Router::start("127.0.0.1:0", RouterOptions::new(vec![addr.to_string()])).unwrap();
        // Raw v2 frames: a `Session` would retry the structured
        // rejection away before we could observe it.
        let mut stream = TcpStream::connect(router.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut send = |req: &Request| {
            let mut text = serde_json::to_string(req).unwrap();
            text.push('\n');
            stream.write_all(text.as_bytes()).unwrap();
            stream.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            serde_json::from_str::<Response>(&line).unwrap()
        };
        assert!(matches!(
            send(&Request::Hello { proto: 2 }),
            Response::Welcome { proto: 2, .. }
        ));
        match send(&Request::SubmitBatch {
            jobs: vec![spec(1)],
            watch: true,
            progress: false,
        }) {
            Response::Overloaded {
                retry_after_ms,
                max_inflight,
                ..
            } => {
                assert_eq!(retry_after_ms, 5);
                assert_eq!(max_inflight, 1);
            }
            other => panic!("expected overloaded, got {other:?}"),
        }
        drop(reader);
        drop(stream);
        router.request_stop();
        let rejected = stub.join().unwrap();
        assert_eq!(
            rejected, OVERLOAD_RETRIES,
            "the router should retry the bounded number of times before propagating"
        );
    }

    #[test]
    fn peer_fill_serves_cached_answers_from_previous_owner() {
        let a = start_backend();
        let b = start_backend();
        let addr_a = a.local_addr().to_string();
        let addr_b = b.local_addr().to_string();
        let s = spec(7);
        // With two nodes the previous owner is always the other node;
        // warm *its* cache by solving there directly.
        let ring = ShardMap::new(&[addr_a.clone(), addr_b.clone()], 0);
        let key = instance_key(&s.design, &s.board, &s.config);
        let prev = ring.previous_owner(key.0).unwrap().to_string();
        let mut warm = Session::connect(prev.as_str()).unwrap();
        warm.submit_batch(vec![s.clone()]).unwrap();
        warm.wait_all(Duration::from_secs(120)).unwrap();
        // Routed with peer fill on, the submit is answered from the
        // peer's cache without queueing anywhere.
        let mut opts = RouterOptions::new(vec![addr_a, addr_b]);
        opts.peer_fill = true;
        let router = Router::start("127.0.0.1:0", opts).unwrap();
        let mut session = Session::connect(router.local_addr()).unwrap();
        let receipts = session.submit_batch(vec![s]).unwrap();
        assert!(receipts[0].cached, "peer fill should answer from cache");
        let outcomes = session.wait_all(Duration::from_secs(30)).unwrap();
        assert_eq!(outcomes[0].state, JobState::Done);
        assert_eq!(router.peer_fills(), 1);
        // The router answers `result` for the served job itself.
        let out = session.result(receipts[0].job).unwrap();
        assert_eq!(out.state, JobState::Done);
        assert!(out.objective.is_some());
        router.request_stop();
    }

    /// A backend that accepts a batch and then drops the connection —
    /// a crash immediately after taking work.
    fn crashing_stub() -> (SocketAddr, thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = thread::spawn(move || {
            let Ok((stream, _)) = listener.accept() else {
                return;
            };
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            loop {
                line.clear();
                let Ok(n) = reader.read_line(&mut line) else {
                    return;
                };
                if n == 0 {
                    return;
                }
                if line.trim().is_empty() {
                    continue;
                }
                let req: Request = serde_json::from_str(&line).unwrap();
                let resp = match req {
                    Request::Hello { .. } => Response::Welcome {
                        proto: 2,
                        capabilities: vec![],
                    },
                    Request::Watch { .. } => Response::Watching {
                        watching: vec![],
                        unknown: vec![],
                    },
                    Request::SubmitBatch { jobs, .. } => {
                        let receipts = jobs
                            .iter()
                            .enumerate()
                            .map(|(i, s)| SubmitReceipt {
                                job: 1000 + i as u64,
                                state: JobState::Queued,
                                cached: false,
                                key: instance_key(&s.design, &s.board, &s.config).to_hex(),
                            })
                            .collect();
                        let resp = Response::BatchSubmitted { jobs: receipts };
                        let mut text = serde_json::to_string(&resp).unwrap();
                        text.push('\n');
                        let _ = writer
                            .write_all(text.as_bytes())
                            .and_then(|_| writer.flush());
                        return; // crash: never solve, just vanish
                    }
                    _ => Response::Error {
                        message: "unexpected verb".into(),
                    },
                };
                let mut text = serde_json::to_string(&resp).unwrap();
                text.push('\n');
                if writer
                    .write_all(text.as_bytes())
                    .and_then(|_| writer.flush())
                    .is_err()
                {
                    return;
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn backend_loss_reroutes_inflight_jobs() {
        let real = start_backend();
        let (flaky_addr, stub) = crashing_stub();
        let backends = vec![real.local_addr().to_string(), flaky_addr.to_string()];
        let router = Router::start("127.0.0.1:0", RouterOptions::new(backends.clone())).unwrap();
        // Pick 3 specs the ring routes to the doomed backend and 3 it
        // routes to the survivor.
        let ring = ShardMap::new(&backends, 0);
        let flaky = flaky_addr.to_string();
        let mut flaky_specs = Vec::new();
        let mut real_specs = Vec::new();
        for seed in 0..10_000u64 {
            if flaky_specs.len() >= 3 && real_specs.len() >= 3 {
                break;
            }
            let s = spec(seed);
            let key = instance_key(&s.design, &s.board, &s.config);
            if ring.owner(key.0) == flaky {
                if flaky_specs.len() < 3 {
                    flaky_specs.push(s);
                }
            } else if real_specs.len() < 3 {
                real_specs.push(s);
            }
        }
        assert_eq!((flaky_specs.len(), real_specs.len()), (3, 3));
        let mut specs = flaky_specs;
        specs.extend(real_specs);

        let mut session = Session::connect(router.local_addr()).unwrap();
        let receipts = session.submit_batch(specs).unwrap();
        assert_eq!(receipts.len(), 6);
        let outcomes = session.wait_all(Duration::from_secs(120)).unwrap();
        assert_eq!(outcomes.len(), 6);
        for out in &outcomes {
            assert_eq!(
                out.state,
                JobState::Done,
                "job {} should survive the backend crash",
                out.job
            );
        }
        assert!(router.reconnects() >= 1, "the crash must be observed");
        // Every job ended up solved by the survivor.
        assert_eq!(real.queue().stats().completed, 6);
        stub.join().unwrap();
        drop(session);
        router.request_stop();
    }

    #[test]
    fn attach_adopts_jobs_from_the_embedded_backend_index() {
        let a = start_backend();
        let addr = a.local_addr().to_string();
        // Solve directly on the backend, bypassing the router entirely.
        let mut direct = Session::connect(addr.as_str()).unwrap();
        let receipts = direct.submit_batch(vec![spec(3)]).unwrap();
        direct.wait_all(Duration::from_secs(120)).unwrap();
        let backend_job = receipts[0].job;
        // A fresh router connection can still attach: the id encoding
        // names the backend.
        let router = Router::start("127.0.0.1:0", RouterOptions::new(vec![addr])).unwrap();
        let mut stream = TcpStream::connect(router.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut send = |req: &Request| {
            let mut text = serde_json::to_string(req).unwrap();
            text.push('\n');
            stream.write_all(text.as_bytes()).unwrap();
            stream.flush().unwrap();
            // Snapshot event frames may precede the response; skip them.
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                let value: Value = serde_json::from_str(&line).unwrap();
                if value.get("event").is_none() {
                    return serde_json::from_value::<Response>(value).unwrap();
                }
            }
        };
        assert!(matches!(
            send(&Request::Hello { proto: 2 }),
            Response::Welcome { .. }
        ));
        let rid = encode(backend_job, 0);
        match send(&Request::Attach {
            jobs: vec![rid, encode(999_999, 0)],
            progress: true,
            stats: false,
        }) {
            Response::Attached { attached, unknown } => {
                assert_eq!(attached.len(), 1);
                assert_eq!(attached[0].job, rid);
                assert_eq!(attached[0].state, JobState::Done);
                assert_eq!(unknown, vec![encode(999_999, 0)]);
            }
            other => panic!("expected attached, got {other:?}"),
        }
        drop(reader);
        drop(stream);
        router.request_stop();
    }
}
