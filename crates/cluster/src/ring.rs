//! The consistent-hash ring that shards jobs across backends.
//!
//! Keys are the 128-bit content-addressed [`InstanceKey`]s the service
//! already computes for every `(design, board, config)` triple, so
//! routing by key shards the solution cache for free: the same instance
//! always lands on the same backend, whose cache then answers repeats.
//!
//! Each backend contributes `vnodes` points to the ring (the FNV-128
//! hash of `"{addr}#{i}"`), which smooths the load split: with a single
//! point per node the arc lengths — and therefore the key shares — vary
//! wildly. A key is owned by the first point at or clockwise after it.
//! Removing a node only deletes that node's points, so only the keys in
//! its arcs move (to their next clockwise point); every other key keeps
//! its owner. That minimal-churn property is what makes resizes cheap
//! and is covered by the `removing_a_node_only_remaps_its_keys` test.
//!
//! [`InstanceKey`]: gmm_service::InstanceKey

use gmm_service::hash::Fnv128;

/// Points each backend contributes to the ring by default.
pub const DEFAULT_VNODES: usize = 64;

/// A consistent-hash ring of backend addresses with virtual nodes.
///
/// ```
/// use gmm_cluster::ShardMap;
///
/// let ring = ShardMap::new(&["10.0.0.1:7171", "10.0.0.2:7171"], 64);
/// let key = 0x00c0ffee_u128;
///
/// // Assignment is a pure function of (nodes, vnodes, key):
/// assert_eq!(ring.owner(key), ShardMap::new(&["10.0.0.1:7171", "10.0.0.2:7171"], 64).owner(key));
///
/// // Removing the owner hands the key to the node that follows it on
/// // the ring — the same node `previous_owner` names after a re-add.
/// let survivor = ring.without(ring.owner(key));
/// assert_eq!(survivor.owner(key), ring.successor(key).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct ShardMap {
    nodes: Vec<String>,
    vnodes: usize,
    /// `(point, node index)` sorted by point; lookup is a binary search
    /// for the first point at or after the key, wrapping at the top.
    ring: Vec<(u128, usize)>,
}

/// Ring point for virtual replica `i` of `addr`.
fn point(addr: &str, i: usize) -> u128 {
    let mut h = Fnv128::new();
    h.update(addr.as_bytes());
    h.update(b"#");
    h.update(&(i as u64).to_le_bytes());
    h.finish()
}

impl ShardMap {
    /// Build a ring over `nodes` with `vnodes` points per node (`0` is
    /// treated as [`DEFAULT_VNODES`]). Node order does not matter: the
    /// ring is a pure function of the node *set* and `vnodes`.
    pub fn new(nodes: &[impl AsRef<str>], vnodes: usize) -> ShardMap {
        let vnodes = if vnodes == 0 { DEFAULT_VNODES } else { vnodes };
        let mut uniq: Vec<String> = Vec::new();
        for n in nodes {
            let n = n.as_ref();
            if !uniq.iter().any(|u| u == n) {
                uniq.push(n.to_string());
            }
        }
        // Sorting makes the node->index mapping independent of the
        // order the caller listed the backends in.
        uniq.sort();
        let mut ring = Vec::with_capacity(uniq.len() * vnodes);
        for (idx, node) in uniq.iter().enumerate() {
            for i in 0..vnodes {
                ring.push((point(node, i), idx));
            }
        }
        ring.sort_unstable();
        ShardMap {
            nodes: uniq,
            vnodes,
            ring,
        }
    }

    /// The distinct backend addresses on the ring, sorted.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Index (into [`ShardMap::nodes`]) of the first ring point at or
    /// clockwise after `key`.
    fn owner_slot(&self, key: u128) -> usize {
        debug_assert!(!self.ring.is_empty(), "owner lookup on an empty ring");
        match self.ring.binary_search(&(key, 0)) {
            Ok(i) => i,
            Err(i) if i == self.ring.len() => 0, // wrap past the top
            Err(i) => i,
        }
    }

    /// The backend that owns `key`. Panics on an empty ring (routers
    /// check [`ShardMap::is_empty`] and fail the job instead).
    pub fn owner(&self, key: u128) -> &str {
        let slot = self.owner_slot(key);
        &self.nodes[self.ring[slot].1]
    }

    /// The first *distinct* backend clockwise after `key`'s owner: the
    /// node that would inherit `key` if its owner left the ring.
    ///
    /// This is also the node that owned `key` *before* the current
    /// owner's points landed on these arcs (a ring grown by one node
    /// pulls each stolen key from exactly this neighbor) — which makes
    /// it the peer to ask during cache-fill after a resize.
    pub fn successor(&self, key: u128) -> Option<&str> {
        if self.nodes.len() < 2 {
            return None;
        }
        let slot = self.owner_slot(key);
        let owner = self.ring[slot].1;
        // Walk clockwise (wrapping) to the next point of another node;
        // bounded because at least two distinct nodes hold points.
        let mut i = slot;
        loop {
            i = (i + 1) % self.ring.len();
            if self.ring[i].1 != owner {
                return Some(&self.nodes[self.ring[i].1]);
            }
        }
    }

    /// The previous owner of `key` from a cache-handoff perspective —
    /// an alias for [`ShardMap::successor`], named for the peer-fill
    /// call site.
    pub fn previous_owner(&self, key: u128) -> Option<&str> {
        self.successor(key)
    }

    /// The ring with `node` removed (unknown nodes are a no-op). Only
    /// the removed node's keys change owner.
    pub fn without(&self, node: &str) -> ShardMap {
        let rest: Vec<&String> = self.nodes.iter().filter(|n| n.as_str() != node).collect();
        ShardMap::new(&rest, self.vnodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NODES: [&str; 5] = [
        "10.0.0.1:7171",
        "10.0.0.2:7171",
        "10.0.0.3:7171",
        "10.0.0.4:7171",
        "10.0.0.5:7171",
    ];

    /// 1k well-spread pseudo-random keys, deterministic across runs.
    fn keys() -> Vec<u128> {
        (0u64..1000)
            .map(|i| {
                let mut h = Fnv128::new();
                h.update(&i.to_le_bytes());
                h.finish()
            })
            .collect()
    }

    #[test]
    fn assignment_is_deterministic_and_order_independent() {
        let a = ShardMap::new(&NODES, 64);
        let mut reversed = NODES;
        reversed.reverse();
        let b = ShardMap::new(&reversed, 64);
        for key in keys() {
            assert_eq!(a.owner(key), b.owner(key));
            assert_eq!(a.owner(key), a.owner(key));
        }
    }

    #[test]
    fn load_is_balanced_within_2x_of_ideal() {
        let ring = ShardMap::new(&NODES, 64);
        let mut counts = std::collections::HashMap::<String, usize>::new();
        let keys = keys();
        for &key in &keys {
            *counts.entry(ring.owner(key).to_string()).or_default() += 1;
        }
        let ideal = keys.len() / NODES.len(); // 200
        for node in NODES {
            let got = counts.get(node).copied().unwrap_or(0);
            assert!(
                got * 2 >= ideal && got <= ideal * 2,
                "{node} owns {got} of {} keys (ideal {ideal}); ring too lumpy",
                keys.len()
            );
        }
    }

    #[test]
    fn removing_a_node_only_remaps_its_keys() {
        let full = ShardMap::new(&NODES, 64);
        let victim = NODES[2];
        let smaller = full.without(victim);
        assert_eq!(smaller.len(), NODES.len() - 1);
        let mut remapped = 0usize;
        for key in keys() {
            let before = full.owner(key);
            let after = smaller.owner(key);
            if before == victim {
                remapped += 1;
                assert_ne!(after, victim);
                // The inheriting node is exactly the old ring's next
                // distinct neighbor.
                assert_eq!(after, full.successor(key).unwrap());
            } else {
                assert_eq!(before, after, "key {key:#x} moved without cause");
            }
        }
        assert!(remapped > 0, "victim owned no keys; test is vacuous");
    }

    #[test]
    fn successor_differs_from_owner() {
        let ring = ShardMap::new(&NODES, 64);
        for key in keys() {
            assert_ne!(ring.owner(key), ring.successor(key).unwrap());
        }
        let single = ShardMap::new(&[NODES[0]], 64);
        assert_eq!(single.successor(7), None);
    }

    #[test]
    fn duplicate_nodes_collapse() {
        let ring = ShardMap::new(&[NODES[0], NODES[0], NODES[1]], 8);
        assert_eq!(ring.len(), 2);
    }
}
