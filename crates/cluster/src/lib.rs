//! # gmm-cluster — scale-out for the mapping service
//!
//! One `mapsrv` daemon is bounded by one machine's cores and one
//! process's cache. This crate turns N daemons into one service without
//! changing the wire protocol: a [`Router`] speaks the same JSON-lines
//! dialect to clients that `mapsrv` does, and is itself a protocol-v2
//! client of every backend.
//!
//! Three mechanisms, layered:
//!
//! * [`ring`] — a [`ShardMap`]: a consistent-hash ring with virtual
//!   nodes over the backend addresses, keyed by the same 128-bit
//!   content-addressed `InstanceKey` the solution cache uses. Identical
//!   instances always land on the same backend, so sharding the *jobs*
//!   shards the *cache* with no coordination. Removing a backend only
//!   remaps that backend's keys (to their clockwise successors); every
//!   other key keeps its owner and its warm cache.
//! * [`router`] — the `gmm route` front-end: fans `submit_batch` out to
//!   the owning backends, merges their `watch` event streams into one
//!   per-client stream (through the same rank-gated bounded outbox the
//!   daemon uses), and survives backend loss by re-routing in-flight
//!   jobs to the keys' new owners. With peer cache-fill enabled it asks
//!   a key's *previous* owner for a cached answer (the non-promoting
//!   `peek` verb) before paying a solve — which is exactly the handoff
//!   a ring resize needs.
//! * admission propagation — a backend at its `max_inflight` bound
//!   answers `Overloaded {retry_after_ms}`; the router retries briefly
//!   and then passes the structured rejection through, so hot shards
//!   shed load independently while cold shards keep absorbing it.
//!
//! Router-issued job ids embed the owning backend (`id = backend_job *
//! 64 + backend_index`), so `poll`/`result`/`attach` on a *different*
//! router connection — or a freshly restarted router — still find the
//! job by stateless forwarding. That is what lets a client `Session`
//! resume a watch stream through a router restart.

pub mod ring;
pub mod router;

pub use ring::{ShardMap, DEFAULT_VNODES};
pub use router::{Router, RouterOptions, MAX_BACKENDS};
