//! The unified error type of the API layer.

use gmm_core::MapError;

/// Everything that can go *wrong* executing a request, across every
/// entry point (in-process, CLI, mapsrv client).
///
/// Outcomes that are legitimate answers — infeasibility, a deadline
/// expiring, cancellation — are **not** errors: they come back as
/// [`crate::Termination`] variants inside a well-formed
/// [`crate::MapReport`]. `ApiError` is reserved for failures: engine
/// breakage, I/O, and protocol violations.
#[derive(Debug)]
#[non_exhaustive]
pub enum ApiError {
    /// The mapping pipeline failed (solver breakage, retry exhaustion,
    /// no solution within a node budget).
    Map(MapError),
    /// Reading or writing a design/board/mapping file failed.
    Io(String),
    /// A remote mapsrv answered with something the protocol forbids.
    Protocol(String),
    /// A remote mapsrv answered `{"ok": false, …}`.
    Remote(String),
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::Map(e) => write!(f, "mapping failed: {e}"),
            ApiError::Io(m) => write!(f, "io: {m}"),
            ApiError::Protocol(m) => write!(f, "protocol: {m}"),
            ApiError::Remote(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<MapError> for ApiError {
    fn from(e: MapError) -> Self {
        ApiError::Map(e)
    }
}

impl From<std::io::Error> for ApiError {
    fn from(e: std::io::Error) -> Self {
        ApiError::Io(e.to_string())
    }
}
