//! The structured result of one solve session.

use std::time::Duration;

use gmm_core::{MapStats, MappingOutcome};
use gmm_ilp::error::{MipStatus, StopReason};

/// Why a solve session ended. The classification every entry point
/// (CLI, mapsrv, in-process callers) shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// The global ILP was solved to proven optimality and detailed
    /// mapping succeeded.
    Optimal,
    /// A mapping was produced, but optimality of the global assignment
    /// was not proven (a node budget or gap limit intervened).
    Feasible,
    /// The wall-clock deadline expired. The report may still carry a
    /// mapping built from the best incumbent found in time.
    DeadlineExceeded,
    /// The request's [`gmm_ilp::control::CancelToken`] was cancelled.
    Cancelled,
    /// The board provably cannot host the design.
    Infeasible,
}

impl Termination {
    /// Stable lowercase wire/display token.
    pub fn as_str(self) -> &'static str {
        match self {
            Termination::Optimal => "optimal",
            Termination::Feasible => "feasible",
            Termination::DeadlineExceeded => "deadline-exceeded",
            Termination::Cancelled => "cancelled",
            Termination::Infeasible => "infeasible",
        }
    }

    /// Parse a [`Termination::as_str`] token back; the wire direction of
    /// the same mapping (protocol-v2 state events carry these tokens).
    pub fn from_name(s: &str) -> Option<Termination> {
        match s {
            "optimal" => Some(Termination::Optimal),
            "feasible" => Some(Termination::Feasible),
            "deadline-exceeded" => Some(Termination::DeadlineExceeded),
            "cancelled" => Some(Termination::Cancelled),
            "infeasible" => Some(Termination::Infeasible),
            _ => None,
        }
    }

    /// Whether the session produced a usable mapping *guarantee* — note
    /// that [`Termination::DeadlineExceeded`] reports may still carry a
    /// best-effort mapping (check [`MapReport::outcome`]).
    pub fn is_success(self) -> bool {
        matches!(self, Termination::Optimal | Termination::Feasible)
    }
}

impl std::fmt::Display for Termination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Structured report of one executed [`crate::MapRequest`].
///
/// Every exit path produces one: an optimal solve, a deadline that fired
/// mid-tree, a cancellation — the counters and timings are always
/// populated, so monitoring and benchmarking read one shape.
///
/// `#[non_exhaustive]`: read fields freely, construct via the facade
/// (or [`MapReport::default`] in tests). Defaults are the empty report:
/// `Infeasible`, no outcome, zeroed counters.
#[derive(Debug, Default)]
#[non_exhaustive]
pub struct MapReport {
    /// Why the session ended.
    pub termination: Termination,
    /// The mapping, when one was produced (always for
    /// `Optimal`/`Feasible`; best-effort for `DeadlineExceeded`).
    pub outcome: Option<MappingOutcome>,
    /// Human-readable detail for [`Termination::Infeasible`] — e.g.
    /// *which* segments fit no bank type — so entry points can report
    /// more than the bare classification.
    pub diagnostic: Option<String>,
    /// Weighted objective of `outcome` under the request's cost weights.
    pub objective: Option<f64>,
    /// Global/detailed retry-loop iterations used (paper §4.1).
    pub retries: usize,
    /// Wall time inside the global ILP solves.
    pub global_time: Duration,
    /// Wall time inside detailed mapping.
    pub detailed_time: Duration,
    /// Wall time of the whole session.
    pub total_time: Duration,
    /// Branch-and-bound nodes explored across all global solves.
    pub nodes_explored: u64,
    /// Simplex pivots across all global solves.
    pub lp_iterations: u64,
    /// Nodes that accepted a parent warm-start basis (skipped phase 1).
    pub warm_started_nodes: u64,
    /// Basis refactorizations across all global solves.
    pub refactorizations: u64,
    /// Worst eta-file fill-in any single node LP reached.
    pub eta_nnz_peak: u64,
    /// Global solve attempts whose warm-start hint (see
    /// [`crate::MapRequest::warm_hint`]) was accepted as the starting
    /// incumbent. Zero when no hint was offered or it did not fit.
    pub incumbent_seeded: u64,
    /// Weighted objective of the greedy heuristic's assignment, when one
    /// ran (`Heuristic` and `Portfolio` solve modes) and found a feasible
    /// assignment. `None` under `Ilp` mode or when the greedy gave up.
    pub heuristic_objective: Option<f64>,
    /// `Portfolio` only: the ILP proved optimality *and* the optimum
    /// equals the heuristic objective — the greedy answer was already
    /// optimal and the ILP run served purely as the proof.
    pub proved_optimal_from_heuristic: bool,
}

/// The default termination is the empty report's: a session that never
/// produced anything. Exists so `MapReport::default()` works in tests
/// and stubs; real reports always come from `MapRequest::execute`.
impl Default for Termination {
    fn default() -> Self {
        Termination::Infeasible
    }
}

impl MapReport {
    /// Classify a finished pipeline run's stats (shared by every
    /// success path).
    pub(crate) fn success_termination(stats: &MapStats) -> Termination {
        match stats.stop_reason {
            Some(StopReason::Deadline) => Termination::DeadlineExceeded,
            Some(StopReason::Cancelled) => Termination::Cancelled,
            Some(StopReason::NodeLimit) => Termination::Feasible,
            None => match stats.global_status {
                Some(MipStatus::Optimal) | None => Termination::Optimal,
                _ => Termination::Feasible,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_report_is_the_empty_report() {
        let r = MapReport::default();
        assert_eq!(r.termination, Termination::Infeasible);
        assert!(r.outcome.is_none());
        assert_eq!(r.nodes_explored, 0);
    }

    #[test]
    fn termination_tokens_are_stable() {
        for (t, s) in [
            (Termination::Optimal, "optimal"),
            (Termination::Feasible, "feasible"),
            (Termination::DeadlineExceeded, "deadline-exceeded"),
            (Termination::Cancelled, "cancelled"),
            (Termination::Infeasible, "infeasible"),
        ] {
            assert_eq!(t.as_str(), s);
            assert_eq!(format!("{t}"), s);
            assert_eq!(Termination::from_name(s), Some(t), "token {s} must parse back");
        }
        assert_eq!(Termination::from_name("frobnicated"), None);
        assert!(Termination::Optimal.is_success());
        assert!(!Termination::Cancelled.is_success());
    }
}
