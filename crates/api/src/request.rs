//! The builder-style solve request.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gmm_arch::Board;
use gmm_core::pipeline::{DetailedStrategy, Mapper, MapperOptions, MappingOutcome};
use gmm_core::{CostMatrix, CostWeights, MapError, PreTable, SolverBackend};
use gmm_design::Design;
use gmm_heur::{greedy_map_with, greedy_solve_with, HeurInfeasible, HeurOptions, HeurSolution, SolveMode};
use gmm_ilp::control::{CancelToken, ProgressObserver};
use gmm_ilp::{BasisBackend, PricingRule};

use crate::error::ApiError;
use crate::report::{MapReport, Termination};

/// One fully-specified solve session: design + board + strategy + cost
/// weights + limits + cancellation + progress, executed with
/// [`MapRequest::execute`].
///
/// This is the single entry point the CLI, the mapsrv workers, and
/// in-process callers all share. Build it fluently; every knob has a
/// sensible default (serial branch-and-bound, sparse-LU basis,
/// constructive detailed mapper, 8 retries, no limits):
///
/// ```
/// use gmm_api::MapRequest;
/// use gmm_design::DesignBuilder;
///
/// let mut b = DesignBuilder::new("quick");
/// b.segment("coeffs", 128, 12).unwrap();
/// b.segment("frame", 4096, 8).unwrap();
/// let design = b.build().unwrap();
/// let board = gmm_arch::Board::prototyping("XCV300", 2).unwrap();
///
/// let report = MapRequest::new(design, board)
///     .deadline(std::time::Duration::from_secs(30))
///     .execute()
///     .unwrap();
/// assert_eq!(report.termination, gmm_api::Termination::Optimal);
/// assert!(report.outcome.is_some());
/// ```
///
/// Cancellation is cooperative and cheap: hand the request a
/// [`CancelToken`] clone, keep the original, and `cancel()` it from any
/// thread — the solver polls it per branch-and-bound node and every few
/// simplex pivots:
///
/// ```
/// use gmm_api::MapRequest;
/// use gmm_ilp::control::CancelToken;
/// use gmm_design::DesignBuilder;
///
/// let mut b = DesignBuilder::new("c");
/// b.segment("s", 64, 8).unwrap();
/// let design = b.build().unwrap();
/// let board = gmm_arch::Board::prototyping("XCV300", 1).unwrap();
///
/// let token = CancelToken::new();
/// token.cancel(); // cancelled before it starts
/// let report = MapRequest::new(design, board)
///     .cancel_token(token)
///     .execute()
///     .unwrap();
/// assert_eq!(report.termination, gmm_api::Termination::Cancelled);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct MapRequest {
    design: Design,
    board: Board,
    options: MapperOptions,
    mode: SolveMode,
}

impl MapRequest {
    /// A request with default options (see [`MapperOptions`] for the
    /// documented defaults).
    pub fn new(design: Design, board: Board) -> MapRequest {
        MapRequest {
            design,
            board,
            options: MapperOptions::new(),
            mode: SolveMode::Ilp,
        }
    }

    /// Which engine(s) run: the exact ILP (default), the greedy heuristic
    /// alone, or the portfolio (heuristic first, its assignment seeded as
    /// the branch-and-bound incumbent, ILP second for the proof). Under
    /// `Portfolio`, a heuristic seed overrides any [`MapRequest::warm_hint`]
    /// — the instance-exact greedy answer dominates a sibling's.
    pub fn solve_mode(mut self, mode: SolveMode) -> Self {
        self.mode = mode;
        self
    }

    /// Objective weights for the three-component cost (paper §4.1.3).
    pub fn weights(mut self, weights: CostWeights) -> Self {
        self.options.weights = weights;
        self
    }

    /// Which MIP engine runs the global formulation.
    pub fn backend(mut self, backend: SolverBackend) -> Self {
        self.options.backend = backend;
        self
    }

    /// Simplex basis-factorization backend (shorthand that reaches into
    /// whichever engine is configured).
    pub fn lp_basis(mut self, basis: BasisBackend) -> Self {
        self.options.backend.set_lp_basis(basis);
        self
    }

    /// Simplex entering-column pricing rule (shorthand that reaches into
    /// whichever engine is configured).
    pub fn lp_pricing(mut self, pricing: PricingRule) -> Self {
        self.options.backend.set_lp_pricing(pricing);
        self
    }

    /// Which detailed mapper runs after global mapping.
    pub fn strategy(mut self, strategy: DetailedStrategy) -> Self {
        self.options.detailed = strategy;
        self
    }

    /// Lifetime-based capacity modification (paper §4.1.2 note).
    pub fn overlap_aware(mut self, on: bool) -> Self {
        self.options.overlap_aware = on;
        self
    }

    /// Retry budget for the global/detailed loop (paper §4.1).
    pub fn max_retries(mut self, n: usize) -> Self {
        self.options.max_retries = n;
        self
    }

    /// Wall-clock budget for the whole session. When it expires the
    /// session returns [`Termination::DeadlineExceeded`] promptly (the
    /// solver polls the deadline every few simplex pivots), carrying
    /// whatever incumbent it had.
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.options.deadline = Some(budget);
        self
    }

    /// Branch-and-bound node budget across all global solves.
    pub fn node_budget(mut self, nodes: u64) -> Self {
        self.options.node_budget = Some(nodes);
        self
    }

    /// Cooperative cancellation: keep a clone of the token and
    /// `cancel()` it from any thread to stop the session.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.options.control.cancel = Some(token);
        self
    }

    /// Warm-start hint: a sibling instance's global assignment
    /// (`hint[d]` = bank type index of segment `d`), offered to the
    /// global ILP as an incumbent seed. The solver validates it against
    /// *this* instance and silently drops a hint that does not fit;
    /// [`MapReport::incumbent_seeded`] reports whether it was accepted.
    pub fn warm_hint(mut self, hint: Vec<u32>) -> Self {
        self.options.warm_hint = Some(hint);
        self
    }

    /// Progress sink: phase transitions, incumbent updates, and a node
    /// heartbeat.
    pub fn observer(mut self, observer: Arc<dyn ProgressObserver>) -> Self {
        self.options.control.observer = Some(observer);
        self
    }

    pub fn design(&self) -> &Design {
        &self.design
    }

    pub fn board(&self) -> &Board {
        &self.board
    }

    pub fn options(&self) -> &MapperOptions {
        &self.options
    }

    pub fn mode(&self) -> SolveMode {
        self.mode
    }

    /// Greedy-mapper knobs derived from this request: same cost weights
    /// and overlap-awareness as the ILP run, so a greedy assignment is a
    /// valid incumbent for the model the ILP actually solves.
    fn heur_options(&self) -> HeurOptions {
        let mut h = HeurOptions::new();
        h.weights = self.options.weights;
        h.overlap_aware = self.options.overlap_aware;
        h
    }

    /// Run the session.
    ///
    /// Legitimate outcomes — optimality, feasibility, deadline,
    /// cancellation, infeasibility — all return `Ok` with the
    /// [`Termination`] inside the report; `Err` is reserved for engine
    /// failures (see [`ApiError`]).
    pub fn execute(&self) -> Result<MapReport, ApiError> {
        match self.mode {
            SolveMode::Ilp => self.execute_ilp(None),
            SolveMode::Heuristic => Ok(self.execute_heuristic()),
            SolveMode::Portfolio => self.execute_portfolio(),
        }
    }

    /// The exact pipeline, optionally with a greedy solution installed as
    /// the branch-and-bound incumbent seed.
    fn execute_ilp(&self, seed: Option<&HeurSolution>) -> Result<MapReport, ApiError> {
        let t0 = Instant::now();
        let mut mapper_options = self.options.clone();
        if let Some(sol) = seed {
            mapper_options.warm_hint =
                Some(sol.assignment.type_of.iter().map(|t| t.0 as u32).collect());
        }
        let run = Mapper::new(mapper_options).map_run(&self.design, &self.board);
        let total_time = t0.elapsed();
        let stats = run.stats;

        let mut report = MapReport {
            termination: Termination::Infeasible,
            outcome: None,
            diagnostic: None,
            objective: None,
            retries: stats.retries,
            global_time: stats.global_time,
            detailed_time: stats.detailed_time,
            total_time,
            nodes_explored: stats.nodes_explored,
            lp_iterations: stats.lp_iterations,
            warm_started_nodes: stats.warm_started_nodes,
            refactorizations: stats.refactorizations,
            eta_nnz_peak: stats.eta_nnz_peak,
            incumbent_seeded: stats.incumbent_seeded,
            heuristic_objective: seed.map(|s| s.objective),
            proved_optimal_from_heuristic: false,
        };
        match run.result {
            Ok(outcome) => {
                report.termination = MapReport::success_termination(&stats);
                let objective = outcome.cost.weighted(&self.options.weights);
                report.objective = Some(objective);
                if report.termination == Termination::Optimal {
                    if let Some(h) = report.heuristic_objective {
                        report.proved_optimal_from_heuristic =
                            (h - objective).abs() <= 1e-6 * objective.abs().max(1.0);
                    }
                }
                report.outcome = Some(outcome);
                Ok(report)
            }
            Err(MapError::Infeasible) => {
                report.termination = Termination::Infeasible;
                report.diagnostic =
                    Some("the design's port/capacity demand exceeds the board".into());
                Ok(report)
            }
            Err(MapError::Unmappable(segs)) => {
                report.termination = Termination::Infeasible;
                report.diagnostic = Some(format!(
                    "{} segment(s) fit no bank type on this board (first: segment {})",
                    segs.len(),
                    segs.first().map(|s| s.0).unwrap_or(0)
                ));
                Ok(report)
            }
            Err(MapError::Deadline) => {
                report.termination = Termination::DeadlineExceeded;
                Ok(report)
            }
            Err(MapError::Cancelled) => {
                report.termination = Termination::Cancelled;
                Ok(report)
            }
            Err(e) => Err(ApiError::Map(e)),
        }
    }

    /// Greedy only: microsecond answers, `Feasible` termination, no proof.
    fn execute_heuristic(&self) -> MapReport {
        let t0 = Instant::now();
        self.options.control.phase("preprocess");
        let pre = PreTable::build(&self.design, &self.board);
        let matrix = CostMatrix::build(&self.design, &self.board, &pre);
        self.options.control.phase("heuristic");
        let mut report = MapReport::default();
        match greedy_map_with(&self.design, &self.board, &pre, &matrix, &self.heur_options()) {
            Ok(m) => {
                report.termination = Termination::Feasible;
                report.objective = Some(m.objective);
                report.heuristic_objective = Some(m.objective);
                report.outcome = Some(MappingOutcome {
                    cost: m.assignment.cost,
                    global: m.assignment,
                    detailed: m.detailed,
                    stats: Default::default(),
                });
            }
            Err(HeurInfeasible::Unmappable(segs)) => {
                report.termination = Termination::Infeasible;
                report.diagnostic = Some(format!(
                    "{} segment(s) fit no bank type on this board (first: segment {})",
                    segs.len(),
                    segs.first().map(|s| s.0).unwrap_or(0)
                ));
            }
            Err(e) => {
                // NoFit / DetailedFailed are *not* infeasibility proofs;
                // the diagnostic (from the error's Display) says so and
                // points at the exact mode.
                report.termination = Termination::Infeasible;
                report.diagnostic = Some(e.to_string());
            }
        }
        report.total_time = t0.elapsed();
        report
    }

    /// Heuristic first, ILP second with the greedy assignment as the
    /// incumbent seed. A deadline exit with *any* feasible answer in hand
    /// — the ILP's own best incumbent or the greedy fallback — terminates
    /// `Feasible` instead of empty-handed `DeadlineExceeded`.
    fn execute_portfolio(&self) -> Result<MapReport, ApiError> {
        let t0 = Instant::now();
        let heur_options = self.heur_options();
        self.options.control.phase("heuristic");
        let pre = PreTable::build(&self.design, &self.board);
        let matrix = CostMatrix::build(&self.design, &self.board, &pre);
        let seed =
            greedy_solve_with(&self.design, &self.board, &pre, &matrix, &heur_options, &[]).ok();

        let mut report = self.execute_ilp(seed.as_ref())?;
        if report.termination == Termination::DeadlineExceeded {
            if report.outcome.is_some() {
                // The tree ran out of time but an incumbent mapping exists:
                // that is the definition of `Feasible`.
                report.termination = Termination::Feasible;
            } else if seed.is_some() {
                if let Ok(m) =
                    greedy_map_with(&self.design, &self.board, &pre, &matrix, &heur_options)
                {
                    report.termination = Termination::Feasible;
                    report.objective = Some(m.objective);
                    report.heuristic_objective = Some(m.objective);
                    report.outcome = Some(MappingOutcome {
                        cost: m.assignment.cost,
                        global: m.assignment,
                        detailed: m.detailed,
                        stats: Default::default(),
                    });
                }
            }
        }
        report.total_time = t0.elapsed();
        Ok(report)
    }
}
