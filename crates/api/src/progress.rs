//! Ready-made [`ProgressObserver`] sinks and the value-typed
//! [`ProgressEvent`] bridge.

use std::sync::Mutex;
use std::time::Instant;

use gmm_ilp::control::ProgressObserver;

/// One progress notification as a plain value.
///
/// [`ProgressObserver`] is a push trait wired straight into the solver's
/// hot loops; `ProgressEvent` is the same information reified so it can
/// be queued, sent over a wire, or handed to a closure. The mapsrv
/// protocol-v2 `watch` stream is built on exactly this bridge: a
/// [`ForwardProgress`] observer rides inside each queue job and forwards
/// every event as a value into the server's per-connection event queues.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProgressEvent {
    /// A named pipeline/solver phase began.
    Phase(&'static str),
    /// A new best integer-feasible solution was accepted.
    Incumbent { objective: f64, nodes: u64 },
    /// Low-frequency node-count heartbeat.
    Nodes(u64),
}

/// Observer adapter that forwards each event as a [`ProgressEvent`]
/// value to a closure — the building block for bridging solver progress
/// onto channels, event queues, and wire protocols.
///
/// ```
/// use std::sync::Mutex;
/// use gmm_api::{ForwardProgress, ProgressEvent};
/// use gmm_ilp::control::ProgressObserver;
///
/// let seen = std::sync::Arc::new(Mutex::new(Vec::new()));
/// let sink = seen.clone();
/// let obs = ForwardProgress::new(move |ev| sink.lock().unwrap().push(ev));
/// obs.on_phase("global");
/// obs.on_incumbent(12.5, 64);
/// assert_eq!(seen.lock().unwrap().len(), 2);
/// assert_eq!(seen.lock().unwrap()[0], ProgressEvent::Phase("global"));
/// ```
pub struct ForwardProgress<F: Fn(ProgressEvent) + Send + Sync> {
    forward: F,
}

impl<F: Fn(ProgressEvent) + Send + Sync> ForwardProgress<F> {
    pub fn new(forward: F) -> Self {
        ForwardProgress { forward }
    }
}

impl<F: Fn(ProgressEvent) + Send + Sync> std::fmt::Debug for ForwardProgress<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ForwardProgress")
    }
}

impl<F: Fn(ProgressEvent) + Send + Sync> ProgressObserver for ForwardProgress<F> {
    fn on_phase(&self, phase: &'static str) {
        (self.forward)(ProgressEvent::Phase(phase));
    }

    fn on_incumbent(&self, objective: f64, nodes: u64) {
        (self.forward)(ProgressEvent::Incumbent { objective, nodes });
    }

    fn on_nodes(&self, nodes: u64) {
        (self.forward)(ProgressEvent::Nodes(nodes));
    }
}

/// Line-oriented progress sink for terminals: one `stderr` line per
/// phase transition, incumbent improvement, and node heartbeat, each
/// stamped with elapsed time. The CLI's `--progress` flag installs one.
///
/// ```
/// use gmm_api::StderrProgress;
/// use gmm_ilp::control::ProgressObserver;
///
/// let sink = StderrProgress::new();
/// sink.on_phase("global"); // prints "[  0.000s] phase    global" to stderr
/// ```
#[derive(Debug)]
pub struct StderrProgress {
    started: Instant,
}

impl StderrProgress {
    pub fn new() -> StderrProgress {
        StderrProgress {
            started: Instant::now(),
        }
    }

    fn stamp(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

impl Default for StderrProgress {
    fn default() -> Self {
        StderrProgress::new()
    }
}

impl ProgressObserver for StderrProgress {
    fn on_phase(&self, phase: &'static str) {
        eprintln!("[{:>7.3}s] phase    {phase}", self.stamp());
    }

    fn on_incumbent(&self, objective: f64, nodes: u64) {
        eprintln!(
            "[{:>7.3}s] incumbent {objective:.3} (node {nodes})",
            self.stamp()
        );
    }

    fn on_nodes(&self, nodes: u64) {
        eprintln!("[{:>7.3}s] nodes    {nodes}", self.stamp());
    }
}

/// An observer that records the most recent event of each kind behind a
/// mutex — the cheap building block for dashboards and the mapsrv
/// per-job progress snapshot.
#[derive(Debug, Default)]
pub struct LatestProgress {
    inner: Mutex<LatestInner>,
}

#[derive(Debug, Default, Clone)]
struct LatestInner {
    phase: Option<&'static str>,
    incumbent: Option<f64>,
    nodes: u64,
}

impl LatestProgress {
    /// `(last phase, last incumbent objective, last node heartbeat)`.
    pub fn snapshot(&self) -> (Option<&'static str>, Option<f64>, u64) {
        let g = self.inner.lock().expect("progress mutex");
        (g.phase, g.incumbent, g.nodes)
    }
}

impl ProgressObserver for LatestProgress {
    fn on_phase(&self, phase: &'static str) {
        self.inner.lock().expect("progress mutex").phase = Some(phase);
    }

    fn on_incumbent(&self, objective: f64, nodes: u64) {
        let mut g = self.inner.lock().expect("progress mutex");
        g.incumbent = Some(objective);
        g.nodes = g.nodes.max(nodes);
    }

    fn on_nodes(&self, nodes: u64) {
        let mut g = self.inner.lock().expect("progress mutex");
        g.nodes = g.nodes.max(nodes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latest_progress_tracks_the_frontier() {
        let p = LatestProgress::default();
        p.on_phase("global");
        p.on_nodes(64);
        p.on_incumbent(10.0, 70);
        p.on_nodes(128);
        p.on_phase("detailed");
        let (phase, incumbent, nodes) = p.snapshot();
        assert_eq!(phase, Some("detailed"));
        assert_eq!(incumbent, Some(10.0));
        assert_eq!(nodes, 128);
    }
}
