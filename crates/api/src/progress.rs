//! Ready-made [`ProgressObserver`] sinks.

use std::sync::Mutex;
use std::time::Instant;

use gmm_ilp::control::ProgressObserver;

/// Line-oriented progress sink for terminals: one `stderr` line per
/// phase transition, incumbent improvement, and node heartbeat, each
/// stamped with elapsed time. The CLI's `--progress` flag installs one.
///
/// ```
/// use gmm_api::StderrProgress;
/// use gmm_ilp::control::ProgressObserver;
///
/// let sink = StderrProgress::new();
/// sink.on_phase("global"); // prints "[  0.000s] phase    global" to stderr
/// ```
#[derive(Debug)]
pub struct StderrProgress {
    started: Instant,
}

impl StderrProgress {
    pub fn new() -> StderrProgress {
        StderrProgress {
            started: Instant::now(),
        }
    }

    fn stamp(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

impl Default for StderrProgress {
    fn default() -> Self {
        StderrProgress::new()
    }
}

impl ProgressObserver for StderrProgress {
    fn on_phase(&self, phase: &'static str) {
        eprintln!("[{:>7.3}s] phase    {phase}", self.stamp());
    }

    fn on_incumbent(&self, objective: f64, nodes: u64) {
        eprintln!(
            "[{:>7.3}s] incumbent {objective:.3} (node {nodes})",
            self.stamp()
        );
    }

    fn on_nodes(&self, nodes: u64) {
        eprintln!("[{:>7.3}s] nodes    {nodes}", self.stamp());
    }
}

/// An observer that records the most recent event of each kind behind a
/// mutex — the cheap building block for dashboards and the mapsrv
/// per-job progress snapshot.
#[derive(Debug, Default)]
pub struct LatestProgress {
    inner: Mutex<LatestInner>,
}

#[derive(Debug, Default, Clone)]
struct LatestInner {
    phase: Option<&'static str>,
    incumbent: Option<f64>,
    nodes: u64,
}

impl LatestProgress {
    /// `(last phase, last incumbent objective, last node heartbeat)`.
    pub fn snapshot(&self) -> (Option<&'static str>, Option<f64>, u64) {
        let g = self.inner.lock().expect("progress mutex");
        (g.phase, g.incumbent, g.nodes)
    }
}

impl ProgressObserver for LatestProgress {
    fn on_phase(&self, phase: &'static str) {
        self.inner.lock().expect("progress mutex").phase = Some(phase);
    }

    fn on_incumbent(&self, objective: f64, nodes: u64) {
        let mut g = self.inner.lock().expect("progress mutex");
        g.incumbent = Some(objective);
        g.nodes = g.nodes.max(nodes);
    }

    fn on_nodes(&self, nodes: u64) {
        let mut g = self.inner.lock().expect("progress mutex");
        g.nodes = g.nodes.max(nodes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latest_progress_tracks_the_frontier() {
        let p = LatestProgress::default();
        p.on_phase("global");
        p.on_nodes(64);
        p.on_incumbent(10.0, 70);
        p.on_nodes(128);
        p.on_phase("detailed");
        let (phase, incumbent, nodes) = p.snapshot();
        assert_eq!(phase, Some("detailed"));
        assert_eq!(incumbent, Some(10.0));
        assert_eq!(nodes, 128);
    }
}
