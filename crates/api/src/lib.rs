//! # gmm-api — the unified solve-session facade
//!
//! One production-grade entry point over the whole mapping pipeline
//! (pre-process → global ILP → detailed mapping, paper §4.1–4.2):
//!
//! * [`MapRequest`] — a builder-style request: design + board +
//!   strategy + cost weights + `deadline`/`node_budget` +
//!   [`CancelToken`] + [`ProgressObserver`];
//! * [`MapReport`] — the structured result: a [`Termination`] reason
//!   (`Optimal | Feasible | DeadlineExceeded | Cancelled | Infeasible`),
//!   the mapping when one exists, timing, and node/iteration/warm-start
//!   counters — populated on *every* exit path;
//! * [`ApiError`] — the single error type for everything that is a
//!   failure rather than an answer (engine breakage, I/O, protocol).
//!
//! The CLI `solve`/`batch` commands, the mapsrv job-queue workers, and
//! in-process library callers all construct and execute solves through
//! this facade, so deadlines, cancellation, and progress behave
//! identically no matter how a solve was started.
//!
//! ## Quickstart
//!
//! ```
//! use gmm_api::{MapRequest, Termination};
//! use gmm_design::DesignBuilder;
//!
//! let mut b = DesignBuilder::new("quick");
//! b.segment("coeffs", 128, 12).unwrap();
//! b.segment("frame", 4096, 8).unwrap();
//! let design = b.build().unwrap();
//! let board = gmm_arch::Board::prototyping("XCV300", 2).unwrap();
//!
//! let report = MapRequest::new(design, board)
//!     .deadline(std::time::Duration::from_secs(30))
//!     .execute()
//!     .unwrap();
//!
//! assert_eq!(report.termination, Termination::Optimal);
//! let outcome = report.outcome.unwrap();
//! assert_eq!(outcome.global.type_of.len(), 2);
//! ```
//!
//! ## Deadlines and cancellation
//!
//! Both are *cooperative*: the branch-and-bound drivers poll once per
//! node and the simplex engine every few dozen pivots, so a session
//! stops within milliseconds of the deadline or `cancel()` call without
//! any per-iteration syscalls. A deadline that fires mid-tree returns
//! `Termination::DeadlineExceeded` with whatever incumbent existed —
//! a *partial but well-formed* report, never a hang or a panic.

mod error;
mod progress;
mod report;
mod request;

pub use error::ApiError;
pub use progress::{ForwardProgress, LatestProgress, ProgressEvent, StderrProgress};
pub use report::{MapReport, Termination};
pub use request::MapRequest;

/// The heuristic/ILP solve-mode selector, re-exported so api users never
/// need a direct `gmm-heur` dependency.
pub use gmm_heur::SolveMode;

// The control primitives are defined next to the solver hot loops that
// poll them; re-exported here so facade users need one import path.
pub use gmm_ilp::control::{CancelToken, NullObserver, ProgressObserver};

#[cfg(test)]
mod tests {
    use super::*;
    use gmm_design::DesignBuilder;
    use std::time::Duration;

    fn tiny() -> (gmm_design::Design, gmm_arch::Board) {
        let mut b = DesignBuilder::new("t");
        b.segment("a", 128, 8).unwrap();
        b.segment("b", 512, 4).unwrap();
        (b.build().unwrap(), gmm_arch::Board::prototyping("XCV300", 2).unwrap())
    }

    #[test]
    fn optimal_report_carries_counters_and_objective() {
        let (design, board) = tiny();
        let report = MapRequest::new(design, board).execute().unwrap();
        assert_eq!(report.termination, Termination::Optimal);
        assert!(report.outcome.is_some());
        assert!(report.objective.is_some());
        assert!(report.nodes_explored >= 1);
        assert!(report.lp_iterations >= 1);
        assert!(report.total_time >= report.global_time);
    }

    #[test]
    fn pre_cancelled_request_terminates_cancelled() {
        let (design, board) = tiny();
        let token = CancelToken::new();
        token.cancel();
        let report = MapRequest::new(design, board)
            .cancel_token(token)
            .execute()
            .unwrap();
        assert_eq!(report.termination, Termination::Cancelled);
        assert!(report.outcome.is_none());
    }

    #[test]
    fn zero_deadline_terminates_deadline_exceeded() {
        let (design, board) = tiny();
        let report = MapRequest::new(design, board)
            .deadline(Duration::ZERO)
            .execute()
            .unwrap();
        assert_eq!(report.termination, Termination::DeadlineExceeded);
        assert!(report.outcome.is_none());
        // Partial but well-formed: counters and timings are present.
        assert_eq!(report.nodes_explored, 0);
    }

    #[test]
    fn infeasible_is_a_termination_not_an_error() {
        use gmm_workloads::{random_design, RandomDesignSpec};
        // 40 huge segments cannot fit the small prototyping board.
        let design = random_design(&RandomDesignSpec {
            segments: 40,
            depth: (60_000, 65_000),
            width: (30, 32),
            seed: 3,
            ..RandomDesignSpec::default()
        });
        let board = gmm_arch::Board::prototyping("XCV300", 1).unwrap();
        let report = MapRequest::new(design, board).execute().unwrap();
        assert_eq!(report.termination, Termination::Infeasible);
        assert!(report.outcome.is_none());
    }

    #[test]
    fn observer_hears_pipeline_phases() {
        use gmm_ilp::control::CollectingObserver;
        use std::sync::Arc;
        let obs = Arc::new(CollectingObserver::default());
        let (design, board) = tiny();
        let report = MapRequest::new(design, board)
            .observer(obs.clone())
            .execute()
            .unwrap();
        assert_eq!(report.termination, Termination::Optimal);
        let phases = obs.phases();
        assert!(phases.contains(&"preprocess"), "{phases:?}");
        assert!(phases.contains(&"global"), "{phases:?}");
        assert!(phases.contains(&"detailed"), "{phases:?}");
    }

    #[test]
    fn mid_solve_cancellation_stops_promptly() {
        use gmm_workloads::slow_table3_instance;
        use std::time::Instant;
        // Second-scale instance, so the cancel lands mid-solve.
        let (design, board) = slow_table3_instance();
        let token = CancelToken::new();
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(150));
                token.cancel();
            })
        };
        let t0 = Instant::now();
        let report = MapRequest::new(design, board)
            .cancel_token(token)
            .execute()
            .unwrap();
        let elapsed = t0.elapsed();
        canceller.join().unwrap();
        // Either the instance solved optimally inside 150ms (fast box) or
        // the cancellation must have landed promptly.
        if report.termination != Termination::Optimal {
            assert_eq!(report.termination, Termination::Cancelled);
            assert!(
                elapsed < Duration::from_secs(3),
                "cancellation took {elapsed:?}"
            );
        }
    }

    #[test]
    fn deadline_bounded_table3_solve_returns_within_slack() {
        use gmm_workloads::slow_table3_instance;
        use std::time::Instant;
        let (design, board) = slow_table3_instance();
        let deadline = Duration::from_millis(300);
        let t0 = Instant::now();
        let report = MapRequest::new(design, board)
            .deadline(deadline)
            .execute()
            .unwrap();
        let elapsed = t0.elapsed();
        match report.termination {
            // Well-formed partial report, delivered promptly (the
            // acceptance budget is deadline + 100ms; allow CI jitter).
            Termination::DeadlineExceeded => {
                assert!(
                    elapsed <= deadline + Duration::from_millis(100),
                    "deadline overshoot: {elapsed:?} vs {deadline:?}"
                );
            }
            // A fast machine may finish the global phase in time.
            Termination::Optimal | Termination::Feasible => {}
            other => panic!("unexpected termination {other:?}"),
        }
        assert!(report.total_time >= report.global_time);
    }
}
