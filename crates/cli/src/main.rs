//! `gmm` — command-line front end for the FPGA memory mapper.
//!
//! Subcommands:
//!
//! * `solve`    — map a design onto a board through the `gmm-api` facade
//!   (deadlines, node budgets, cancellation, progress); `map` is an alias
//! * `gen`      — generate designs/boards (random, kernels, Table 3)
//! * `simulate` — map a design and replay a trace on the result
//! * `serve`    — run the `mapsrv` batch daemon (JSON-lines over TCP)
//! * `route`    — front N `mapsrv` daemons with one consistent-hash
//!   sharded endpoint (same protocol; failover + admission propagation)
//! * `batch`    — stream a directory/manifest/generated set of instances
//!   through the job queue and print a summary table
//! * `arch-sweep` — sweep a grid of on-chip BRAM parameters over a design
//!   suite, score each architecture by geometric-mean mapped cost, and
//!   write a Pareto-front JSON
//! * `bench`    — run the simplex pricing-rule ablation (stream workload
//!   plus Table 3 points per rule) and write `BENCH_simplex.json`, or
//!   with `--service` the queue/cache throughput benchmark behind
//!   `BENCH_service.json`
//! * `check`    — explore the gmm-check concurrency models under a
//!   deterministic scheduler (debug builds only)
//! * `lint`     — run the workspace invariant lint (`lint.allow` holds
//!   audited exceptions)
//! * `table1`   — print the paper's Table 1 device catalog
//! * `table2`   — print the paper's Table 2 allocation options
//! * `fig2`     — run the paper's Figure 2 worked example
//! * `table3`   — regenerate Table 3 / Figure 4 (complete vs global)
//!
//! Every subcommand also answers `--help` with its own usage text.
//!
//! ## Exit codes
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | success |
//! | 1 | internal failure (solver error, validation failure, I/O on output) |
//! | 2 | usage error (unknown command, bad flag value) |
//! | 3 | bad input (unreadable or malformed design/board/mapping file) |
//! | 4 | infeasible instance (the board provably cannot host the design) |
//! | 5 | deadline exceeded or cancelled (solve stopped by `--deadline-secs`, a job deadline, or a cancellation) |
//!
//! The distinction lets scripts separate "fix the invocation" (2), "fix
//! the file" (3), "fix the design or pick a bigger board" (4), and "give
//! it more time" (5) without parsing stderr.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gmm_api::{MapRequest, SolveMode, StderrProgress, Termination};
use gmm_arch::Board;
use gmm_check::explore::{explore, ExploreOpts};
use gmm_core::pipeline::{DetailedStrategy, Mapper, MapperOptions};
use gmm_core::{
    enumerate_port_allocations, CostWeights, DetailedIlpOptions, MapError, SolverBackend,
};
use gmm_design::Design;
use gmm_ilp::branch::MipOptions;
use gmm_ilp::parallel::ParallelOptions;
use gmm_ilp::StopReason;
use gmm_service::{
    JobConfig, JobEvent, JobQueue, JobState, LpBasis, LpPricing, MapServer, ProgressFrame,
    QueueOptions, Session, SubmitSpec,
};
use gmm_sim::{render_report, simulate_mapping, Trace};
use gmm_workloads::{
    cycling_instances, kernels, stream_instances, table3_board, table3_design, RandomDesignSpec,
    StreamSpec, TABLE3,
};

/// Classified CLI failure; the variant fixes the process exit code.
#[derive(Debug)]
enum CliError {
    /// Bad invocation: unknown command or malformed flag (exit 2).
    Usage(String),
    /// Unreadable or unparsable input file (exit 3).
    Input(String),
    /// The instance is provably unmappable on this board (exit 4).
    Infeasible(String),
    /// The solve was stopped by a deadline or cancellation (exit 5).
    Interrupted(String),
    /// Everything else: solver failures, output I/O, failed validation
    /// (exit 1).
    Internal(String),
}

impl CliError {
    fn usage(msg: impl Into<String>) -> CliError {
        CliError::Usage(msg.into())
    }
    fn input(msg: impl Into<String>) -> CliError {
        CliError::Input(msg.into())
    }
    fn internal(msg: impl Into<String>) -> CliError {
        CliError::Internal(msg.into())
    }

    fn exit_code(&self) -> u8 {
        match self {
            CliError::Internal(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Input(_) => 3,
            CliError::Infeasible(_) => 4,
            CliError::Interrupted(_) => 5,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::Input(m)
            | CliError::Infeasible(m)
            | CliError::Interrupted(m)
            | CliError::Internal(m) => m,
        }
    }
}

/// Pipeline errors split by who must act: infeasibility is the *instance's*
/// fault (exit 4), the rest is the tool's (exit 1).
fn classify_map_err(e: MapError) -> CliError {
    match &e {
        MapError::Infeasible => CliError::Infeasible(format!(
            "{e}: the design's port/capacity demand exceeds the board"
        )),
        MapError::Unmappable(segs) => CliError::Infeasible(format!(
            "{} segment(s) fit no bank type on this board (first: segment {})",
            segs.len(),
            segs.first().map(|s| s.0).unwrap_or(0)
        )),
        MapError::Deadline => {
            CliError::Interrupted("deadline exceeded before any solution was found".into())
        }
        MapError::Cancelled => CliError::Interrupted("solve cancelled".into()),
        _ => CliError::Internal(e.to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    // `gmm <subcommand> --help` prints that subcommand's own usage text
    // (golden-tested), without running anything.
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        if let Some(text) = subcommand_help(cmd) {
            println!("{text}");
            return ExitCode::SUCCESS;
        }
    }
    let result = match cmd.as_str() {
        // `map` is the historical spelling; both go through the facade.
        "solve" | "map" => cmd_solve(rest),
        "gen" => cmd_gen(rest),
        "simulate" => cmd_simulate(rest),
        "validate" => cmd_validate(rest),
        "export" => cmd_export(rest),
        "serve" => cmd_serve(rest),
        "route" => cmd_route(rest),
        "batch" => cmd_batch(rest),
        "arch-sweep" => cmd_arch_sweep(rest),
        "bench" => cmd_bench(rest),
        "check" => cmd_check(rest),
        "lint" => cmd_lint(rest),
        "table1" => cmd_table1(),
        "table2" => cmd_table2(rest),
        "fig2" => cmd_fig2(),
        "table3" => cmd_table3(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage(format!("unknown command `{other}`\n{USAGE}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}

const USAGE: &str = "\
gmm — global/detailed memory mapping for FPGA-based reconfigurable systems

USAGE:
  gmm solve --design <d.json> --board <b.json> [--complete] [--parallel N]
            [--overlap] [--ilp-detailed] [--lp-basis dense|lu]
            [--lp-pricing dantzig|partial|devex]
            [--solve-mode ilp|heuristic|portfolio]
            [--deadline-secs T] [--node-budget N] [--progress]
            [--out <mapping.json>]          (alias: gmm map)
  gmm gen design --segments N [--seed S] [--out <f.json>]
  gmm gen board (--device XCV1000 [--srams N] | --table3-point I) [--out f]
  gmm gen kernel <fir|conv2d|fft|matmul|histogram> [--out <f.json>]
  gmm simulate --design <d.json> --board <b.json> [--random N]
  gmm validate --design <d.json> --board <b.json> --mapping <m.json>
               [--max-sharing N]
  gmm export --design <d.json> --board <b.json> [--complete]
             [--format mps|lp] [--out <file>]
  gmm serve [--addr 127.0.0.1:7171] [--workers N] [--cache-shards N]
            [--cache-cap K] [--cache-dir <dir>] [--no-persist]
            [--retain-jobs N] [--retain-secs T] [--time-limit-secs T]
            [--max-inflight J] [--solve-mode ilp|heuristic|portfolio]
  gmm route --backends host:port,host:port[,...] [--addr 127.0.0.1:7272]
            [--vnodes N] [--peer-fill]
  gmm batch (--dir <d> | --manifest <m.json> | --stream N [--distinct D])
            [--seed S] [--addr host:port] [--workers N] [--repeat K]
            [--verify] [--progress] [--cache-cap K] [--cache-dir <dir>]
            [--no-persist] [--retain-jobs N] [--retain-secs T]
            [--lp-basis dense|lu] [--lp-pricing dantzig|partial|devex]
            [--overlap] [--ilp-detailed] [--job-deadline-secs T]
            [--solve-mode ilp|heuristic|portfolio]
  gmm arch-sweep [--capacities 2048,4096,8192] [--counts 4] [--widths 16]
            [--suite 4] [--seed S] [--workers N]
            [--solve-mode ilp|heuristic|portfolio] [--out SWEEP_arch.json]
  gmm bench [--quick] [--stream N] [--seed S] [--points 1..9]
            [--cap-secs T] [--progress] [--out BENCH_simplex.json]
            [--service]
  gmm check [--model cache|outbox|queue] [--preemption-bound P]
            [--min-schedules N] [--max-schedules N] [--seed S]
  gmm lint [--root <dir>]
  gmm table1
  gmm table2 [--ports 3] [--depth 16]
  gmm fig2
  gmm table3 [--points 1..9] [--cap-secs 60] [--parallel N]
             [--lp-basis dense|lu] [--lp-pricing dantzig|partial|devex]

Every subcommand answers `--help` with its own usage text.

Solves run through the gmm-api facade: --deadline-secs bounds the whole
solve session (a deadline that fires mid-tree still reports timing and
node counters, plus the best mapping found in time), --node-budget
bounds branch-and-bound nodes, and --progress streams phase/incumbent/
node events to stderr.

The LP engine factorizes the simplex basis; `--lp-basis` picks the
backend: `lu` (sparse LU + eta updates, default) or `dense` (explicit
inverse, reference). `--lp-pricing` picks the entering-variable rule:
`dantzig` (full most-negative scan, default), `partial` (rotating
candidate window with a full-scan fallback), or `devex` (reference-
weight steepest-edge approximation). All rules reach the same optima;
they differ in pivot counts and scan cost. `bench` runs the stream
workload plus Table 3 points once per rule and writes the throughput
trajectory (instances/sec, pivots/sec, nodes/sec, refactorization
cadence) to BENCH_simplex.json; `bench --service` instead measures the
job queue itself (jobs/sec and cache hit-rate under LRU eviction, one
column per solve mode) and writes BENCH_service.json.

--solve-mode picks the solver portfolio: `ilp` (the default: full
branch-and-bound, proves optimality), `heuristic` (the gmm-heur greedy
first-fit mapper alone — microseconds, always `feasible`), or
`portfolio` (greedy first, its assignment installed as the
branch-and-bound incumbent; the ILP then proves optimality or hits the
deadline carrying the heuristic answer as a `feasible` result instead
of empty-handed). On `serve` the flag is a daemon-wide policy forcing
every submitted job's mode. `arch-sweep` fans a grid of on-chip BRAM
parameters (capacity ladder x bank counts x max widths) crossed with a
design suite through the batch queue, scores each architecture by the
geometric mean of its per-design mapped costs, prints the table, and
writes the Pareto front over (geomean cost, total capacity) as
schema-tagged JSON.

`serve` runs the mapsrv daemon: a JSON-lines TCP protocol (v1 verbs
submit / poll / result / cancel / stats / shutdown, plus the v2 session
surface: hello handshake, submit_batch, and watch streams pushing state
and solver-progress events), a sharded work-stealing job queue, and a
content-addressed solution cache. `batch` pushes a set of instances
through the same queue — in-process by default, or against a running
daemon with --addr — over one multiplexed session, waits on the event
stream (no polling), and prints a per-instance summary table with each
job's Termination; --job-deadline-secs attaches a per-job deadline to
every submission, --progress renders live per-job state/phase events.

`route` fronts N running daemons with the same protocol: jobs shard
across backends by a consistent-hash ring over their content-addressed
instance keys (so identical instances reuse the same backend's cache),
watch streams merge into one per-client stream, a lost backend's
in-flight jobs re-route to the keys' new owners, and a backend at its
admission bound answers `overloaded {retry_after_ms}` through the
router. --peer-fill asks a key's previous ring owner for a cached
answer before paying a solve (cheap ring resizes).

Retention (bounded daemon memory): --cache-cap bounds live cached
solutions (LRU eviction; default 4096, 0 = unbounded), --retain-jobs
bounds terminal job records per record shard (default 1024, 0 =
unbounded), --retain-secs additionally expires terminal records by
age (swept opportunistically on submit and on job completion, not just
on the stats verb). Polling a pruned job id returns the structured
state `expired`. `batch --stream N --distinct D` cycles N submissions
through D distinct instances to exercise eviction and re-solve paths.

`check` runs the gmm-check concurrency model checker: small closed
models of the solution cache, the watch outbox and the job queue's
claim protocol are executed under every bounded-preemption
interleaving of a deterministic scheduler (debug builds only — the
scheduling instrumentation is compiled out of release binaries).
`lint` runs the workspace invariant scanner: panic-free request paths,
per-verb round-trip tests, fully-rendered stats counters and
documented option defaults, with audited exceptions in `lint.allow`.

Persistence: --cache-dir <dir> adds an on-disk cache tier (an
append-only, checksummed segment log) under the memory cache. Optimal
solves and LRU-evicted entries spill to it, a restart reloads it, and a
memory miss falls through to disk — so a restarted daemon answers
repeat traffic byte-identically without re-solving. The same log keeps
per-family warm-start hints that seed branch-and-bound on near-miss
instances. --no-persist ignores --cache-dir and runs memory-only.

Exit codes: 0 ok, 1 internal failure, 2 usage error, 3 malformed input,
4 infeasible instance, 5 deadline exceeded or cancelled.
";

/// Per-subcommand `--help` text (golden-tested; see
/// `crates/cli/tests/help_golden.rs`).
fn subcommand_help(cmd: &str) -> Option<&'static str> {
    Some(match cmd {
        "solve" | "map" => {
            "\
gmm solve — map a design onto a board (alias: gmm map)

USAGE:
  gmm solve --design <d.json> --board <b.json> [options]

OPTIONS:
  --design <file>       design JSON (required)
  --board <file>        board JSON (required)
  --complete            one-step complete formulation (Table 3 baseline)
  --parallel N          work-stealing parallel branch-and-bound, N threads
  --overlap             lifetime-based capacity modification
  --ilp-detailed        ILP detailed mapper instead of the constructive packer
  --lp-basis dense|lu   simplex basis factorization backend (default lu)
  --lp-pricing R        simplex pricing rule: dantzig (default), partial,
                        or devex; all reach the same optima
  --solve-mode M        ilp (default: prove optimality), heuristic (greedy
                        first-fit only, always `feasible`), or portfolio
                        (greedy seeds the branch-and-bound incumbent; a
                        deadline then returns the heuristic answer as
                        `feasible` instead of empty-handed); not available
                        with --complete
  --deadline-secs T     wall-clock budget; past it the solve stops and
                        reports termination `deadline-exceeded` (exit 5)
  --node-budget N       branch-and-bound node budget across the session
  --progress            stream phase/incumbent/node events to stderr
  --out <file>          write the detailed mapping JSON

Exit codes: 0 ok, 1 internal, 2 usage, 3 bad input, 4 infeasible,
5 deadline exceeded or cancelled."
        }
        "gen" => {
            "\
gmm gen — generate designs and boards

USAGE:
  gmm gen design --segments N [--seed S] [--out <f.json>]
  gmm gen board (--device XCV1000 [--srams N] | --table3-point I) [--out f]
  gmm gen kernel <fir|conv2d|fft|matmul|histogram> [--out <f.json>]"
        }
        "simulate" => {
            "\
gmm simulate — map a design and replay an access trace on the result

USAGE:
  gmm simulate --design <d.json> --board <b.json> [--random N]

OPTIONS:
  --random N   replay N random accesses instead of the profile trace"
        }
        "validate" => {
            "\
gmm validate — check a detailed mapping against a design and board

USAGE:
  gmm validate --design <d.json> --board <b.json> --mapping <m.json>
               [--max-sharing N]

OPTIONS:
  --max-sharing N   allow up to N segments per port (default 1)"
        }
        "export" => {
            "\
gmm export — write the global (or complete) ILP in MPS or LP format

USAGE:
  gmm export --design <d.json> --board <b.json> [--complete]
             [--format mps|lp] [--out <file>]"
        }
        "serve" => {
            "\
gmm serve — run the mapsrv batch daemon (JSON-lines over TCP)

USAGE:
  gmm serve [--addr 127.0.0.1:7171] [--workers N] [--cache-shards N]
            [--cache-cap K] [--cache-dir <dir>] [--no-persist]
            [--retain-jobs N] [--retain-secs T] [--time-limit-secs T]
            [--max-inflight J] [--solve-mode ilp|heuristic|portfolio]

--max-inflight J bounds admission: past J queued+running jobs, submits
answer the structured v2 `overloaded {retry_after_ms}` response instead
of queueing without bound (0 = unbounded, the default). Session clients
(`gmm batch`, the router) retry with the suggested backoff; v1 clients
see a plain error.

--solve-mode sets a daemon-wide solve policy: every submitted job is
forced to that mode (before its cache key is computed, so per-mode
cache slots stay consistent). Without it each job's own config decides.

Verbs (v1): submit (optional deadline_ms) / poll / result / cancel /
stats / shutdown. Jobs past their deadline answer `deadline`; cancelled
jobs answer `cancelled`; pruned job ids answer `expired`.

--cache-dir <dir> persists the solution cache across restarts: optimal
solves and LRU evictions land in an append-only checksummed log that is
replayed (and compacted) on startup, so a restarted daemon serves
repeat submissions byte-identically from disk (counted in stats as
disk_hits). The log also carries per-family warm-start hints that seed
branch-and-bound on near-miss instances (hint_hits / incumbent_seeded).
--no-persist ignores --cache-dir and runs memory-only.

Protocol v2 (negotiated per connection, v1 stays available): `hello`
negotiates {proto:2} and advertises capabilities, `submit_batch` takes
many jobs per round-trip, and `watch` turns the connection into a
server-push stream of JSON-lines events — `state` transitions
(terminal ones carry the full termination) and solver `progress`
frames. Event delivery is bounded per connection (drop-oldest progress,
counted in stats as events_dropped), so slow readers never stall
workers."
        }
        "route" => {
            "\
gmm route — front N mapsrv daemons with one sharded endpoint

USAGE:
  gmm route --backends host:port,host:port[,...] [--addr 127.0.0.1:7272]
            [--vnodes N] [--peer-fill]

OPTIONS:
  --backends a,b,...   running mapsrv addresses (required; also accepts
                       the flag repeated); order matters — router job
                       ids embed each backend's position, so keep the
                       list stable across router restarts
  --addr host:port     listen address (default 127.0.0.1:7272)
  --vnodes N           ring points per backend (default 64); more points
                       smooth the key split at ring-build cost
  --peer-fill          before routing a submit, ask the key's previous
                       ring owner for a cached answer via the
                       non-promoting `peek` verb — cheap ring resizes

The router speaks the daemon's own JSON-lines protocol on both sides:
clients connect exactly as they would to one mapsrv (v1 verbs and the
v2 session surface both work), and the router is a protocol-v2 client
of every backend. Jobs shard by the consistent-hash ring over their
content-addressed instance keys, so identical instances always reuse
the same backend's solution cache. Per-client watch streams from all
backends merge into one event stream.

Failure handling: a lost backend leaves the ring and its in-flight
jobs re-submit to the keys' new owners (stderr logs each loss with a
reconnects counter); a backend at its --max-inflight admission bound
answers `overloaded {retry_after_ms}`, which the router retries
briefly and then propagates to v2 clients (v1 clients see a plain
error). `stats` aggregates all backends: counters sum, latency
percentiles report the worst shard.

Send {\"verb\":\"shutdown\"} to stop the router (backends keep running)."
        }
        "batch" => {
            "\
gmm batch — stream instances through the job queue, print a summary

USAGE:
  gmm batch (--dir <d> | --manifest <m.json> | --stream N [--distinct D])
            [--seed S] [--addr host:port] [--workers N] [--repeat K]
            [--verify] [--progress] [--cache-cap K] [--cache-dir <dir>]
            [--no-persist] [--retain-jobs N] [--retain-secs T]
            [--lp-basis dense|lu] [--lp-pricing dantzig|partial|devex]
            [--overlap] [--ilp-detailed] [--job-deadline-secs T]
            [--solve-mode ilp|heuristic|portfolio]

OPTIONS:
  --solve-mode M          per-job solve mode (see `gmm solve --help`);
                          portfolio seeds every branch-and-bound with the
                          greedy answer — the summary line's heuristic
                          counters show how often it engaged
  --progress              render live per-job state/phase/incumbent
                          events to stderr (local and --addr sessions
                          both stream; remote events ride the protocol-v2
                          watch stream)
  --cache-dir <dir>       persistent cache tier for the in-process queue
                          (see `gmm serve --help`); --no-persist ignores it
  --job-deadline-secs T   per-job solve deadline; jobs past it terminate
                          in the structured `deadline` state (exit 5 when
                          any job was deadline'd/cancelled and none failed)

The summary table carries each job's full Termination (optimal /
feasible / deadline-exceeded / cancelled / infeasible) plus per-round
termination counts.

Exit codes: 0 ok, 1 any job failed, 5 deadline'd/cancelled jobs only."
        }
        "table1" => "gmm table1 — print the paper's Table 1 device catalog\n\nUSAGE:\n  gmm table1",
        "table2" => {
            "\
gmm table2 — print the paper's Table 2 allocation options

USAGE:
  gmm table2 [--ports 3] [--depth 16]"
        }
        "fig2" => "gmm fig2 — run the paper's Figure 2 worked example\n\nUSAGE:\n  gmm fig2",
        "table3" => {
            "\
gmm table3 — regenerate Table 3 / Figure 4 (complete vs global)

USAGE:
  gmm table3 [--points 1..9] [--cap-secs 60] [--parallel N]
             [--lp-basis dense|lu] [--lp-pricing dantzig|partial|devex]"
        }
        "bench" => {
            "\
gmm bench — simplex pricing ablation, written to BENCH_simplex.json

USAGE:
  gmm bench [--quick] [--stream N] [--seed S] [--points 1..9]
            [--cap-secs T] [--progress] [--out BENCH_simplex.json]
            [--service [--backends N]]

Runs the stream workload plus the selected Table 3 points once per
pricing rule (dantzig, partial, devex) through the gmm-api facade and
writes a JSON trajectory report: per rule, instances/sec over the
stream, pivots/sec and nodes/sec through the solver loops, total
refactorizations, and the peak eta-file fill-in.

With --service it instead benchmarks the batch service itself: the
stream workload is pushed through a fresh JobQueue once per solve mode
(ilp, portfolio), each lap submitting every distinct instance cold
(cache misses + LRU eviction) and then re-submitting a hot block sized
to the cache (deterministic hits), and writes jobs/sec, hit-rate,
eviction and heuristic counters per mode to BENCH_service.json.

OPTIONS:
  --quick       CI-sized smoke run (8 stream instances, Table 3 points
                1-2, 2 s caps); default is 24 instances, all 9 points,
                5 s caps. For --service: 2 laps instead of 4
  --stream N    override the stream instance count
  --seed S      stream workload seed (default 0xBEEF)
  --points P    Table 3 points to time per rule (e.g. 1..3 or 1,4,9)
  --cap-secs T  per-point deadline; capped points are marked `capped`
  --progress    stream phase/incumbent/node events to stderr
  --out <file>  report path (default BENCH_simplex.json, or
                BENCH_service.json with --service)
  --service     run the service-layer benchmark instead
  --backends N  with --service: also run the ilp workload through an
                in-process `gmm route` router over N TCP backends at
                the same total worker count (the cluster lap), and
                record routed jobs/sec vs single-node

The run fails (exit 1) if devex pivots/sec drops below 0.8x the
dantzig baseline measured in the same run — the devex update must stay
cheap enough that its per-pivot overhead never dominates. The service
benchmark fails the same way if eviction never ran, the hot blocks
never hit, or the portfolio column never seeded an incumbent — and the
cluster lap fails it if routed throughput drops below 0.7x the
single-node column (routing overhead must stay amortizable)."
        }
        "arch-sweep" => {
            "\
gmm arch-sweep — score a grid of memory architectures over a design suite

USAGE:
  gmm arch-sweep [--capacities 2048,4096,8192] [--counts 4] [--widths 16]
                 [--suite 4] [--seed S] [--workers N]
                 [--solve-mode ilp|heuristic|portfolio]
                 [--out SWEEP_arch.json]

Expands the grid capacities x counts x widths into boards (each swept
on-chip BRAM type plus a fixed off-chip spill tier that keeps every
point mappable), maps every suite design on every board through the
batch job queue, and scores each architecture by the geometric mean of
its per-design mapped costs — the geomean keeps one outlier design from
dominating a suite-wide score. Prints the per-architecture table and
writes a schema-tagged JSON artifact (`gmm-arch-sweep/v1`) carrying
every scored architecture plus the Pareto front over (geomean cost,
total board capacity): the cheapest architecture at every capacity
budget.

OPTIONS:
  --capacities L  comma-separated per-instance BRAM capacities in bits
                  (default 2048,4096,8192)
  --counts L      comma-separated BRAM instance counts (default 4)
  --widths L      comma-separated maximum data widths (default 16)
  --suite N       designs drawn from the stream generator (default 4)
  --seed S        stream seed the suite is drawn from (default 0xBEEF)
  --workers N     queue worker threads (default: auto)
  --solve-mode M  solve mode for every job (default portfolio — the
                  greedy seed makes a full sweep cheap; optima are
                  unchanged)
  --out <file>    artifact path (default SWEEP_arch.json)

Exit codes: 0 ok, 1 no architecture scored (or internal failure)."
        }
        "check" => {
            "\
gmm check — explore the gmm-check concurrency models

USAGE:
  gmm check [--model cache|outbox|queue] [--preemption-bound P]
            [--min-schedules N] [--max-schedules N] [--seed S]

Runs each closed model of the service layer's concurrent types (the
solution cache, the watch outbox, the job queue's claim protocol)
under a deterministic scheduler that enumerates interleavings
depth-first with a bounded number of preemptions, then tops up with
seeded-random schedules to the floor. Every schedule re-runs the model
from scratch and re-checks its invariants; the first violating
schedule is reported with the decision trace that reproduces it.

Debug builds only: the schedule points and lock instrumentation are
compiled out of release binaries, so a release `gmm check` exits with
a usage error instead of silently exploring nothing.

OPTIONS:
  --model M             run one model instead of all (cache|outbox|queue)
  --preemption-bound P  max involuntary switches per schedule (default 2)
  --min-schedules N     fail any model explored fewer than N times
                        (default 1000; random top-up fills small DFS
                        spaces to this floor)
  --max-schedules N     hard cap on schedules per model (default 5000)
  --seed S              base seed for the random top-up phase

Exit codes: 0 all models hold, 1 a model failed or missed the floor,
2 usage error (including release builds)."
        }
        "lint" => {
            "\
gmm lint — workspace invariant lint

USAGE:
  gmm lint [--root <dir>]

Scans the workspace sources (no syn, no rustc plumbing) and enforces
the cross-cutting rules the compiler cannot see:

  panic-free-request-path  no .unwrap()/.expect()/panic! outside
                           #[cfg(test)] in the mapsrv request path
                           (server.rs, protocol.rs); malformed frames
                           must answer structured errors
  verb-round-trip          every wire verb in protocol.rs has a
                           fn <verb>_round_trip… test
  stats-rendered           every QueueStats/ServiceStats counter is
                           rendered by the stats verb and the batch
                           summary line (marker-delimited regions)
  options-defaults         every pub #[non_exhaustive] *Options struct
                           has a Default and documents its defaults

Audited exceptions live in lint.allow at the workspace root, one
`rule:file-suffix:substring` per line; malformed entries are findings.

OPTIONS:
  --root <dir>  workspace root (default: walk up from the current
                directory to the first [workspace] Cargo.toml)

Exit codes: 0 clean, 1 findings, 3 workspace root not found."
        }
        _ => return None,
    })
}

/// Tiny flag parser: `--key value` and boolean `--key`.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Flags { args }
    }
    fn get(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }
    fn has(&self, key: &str) -> bool {
        self.args.iter().any(|a| a == key)
    }
    /// Every value of a repeatable `--key value` flag, in order.
    fn get_all(&self, key: &str) -> Vec<&str> {
        self.args
            .iter()
            .enumerate()
            .filter(|(_, a)| *a == key)
            .filter_map(|(i, _)| self.args.get(i + 1))
            .map(String::as_str)
            .collect()
    }
    fn positional(&self, idx: usize) -> Option<&str> {
        self.args
            .iter()
            .filter(|a| !a.starts_with("--"))
            .nth(idx)
            .map(String::as_str)
    }
    /// Parse `--key value` into any `FromStr` type (usage error on junk).
    fn parse<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|e| CliError::usage(format!("{key}: {e}"))),
        }
    }

    /// Parse `--key value` as a non-negative finite duration in seconds
    /// (`Duration::from_secs_f64` panics on negative/NaN input).
    fn parse_secs(&self, key: &str) -> Result<Option<Duration>, CliError> {
        match self.parse::<f64>(key)? {
            None => Ok(None),
            Some(s) if s.is_finite() && s >= 0.0 => Ok(Some(Duration::from_secs_f64(s))),
            Some(s) => Err(CliError::usage(format!(
                "{key}: must be a non-negative number of seconds, got {s}"
            ))),
        }
    }
}

fn load_design(path: &str) -> Result<Design, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::input(format!("reading {path}: {e}")))?;
    serde_json::from_str(&text).map_err(|e| CliError::input(format!("parsing {path}: {e}")))
}

fn load_board(path: &str) -> Result<Board, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::input(format!("reading {path}: {e}")))?;
    serde_json::from_str(&text).map_err(|e| CliError::input(format!("parsing {path}: {e}")))
}

fn write_json<T: serde::Serialize>(path: &str, value: &T) -> Result<(), CliError> {
    let text = serde_json::to_string_pretty(value).map_err(|e| CliError::internal(e.to_string()))?;
    std::fs::write(path, text).map_err(|e| CliError::internal(format!("writing {path}: {e}")))
}

fn lp_basis_from_flags(f: &Flags) -> Result<Option<gmm_ilp::BasisBackend>, CliError> {
    match f.get("--lp-basis") {
        None => Ok(None),
        Some("lu") | Some("sparse-lu") => Ok(Some(gmm_ilp::BasisBackend::SparseLu)),
        Some("dense") => Ok(Some(gmm_ilp::BasisBackend::Dense)),
        Some(other) => Err(CliError::usage(format!(
            "--lp-basis must be `dense` or `lu`, got `{other}`"
        ))),
    }
}

fn lp_pricing_from_flags(f: &Flags) -> Result<Option<gmm_ilp::PricingRule>, CliError> {
    match f.get("--lp-pricing") {
        None => Ok(None),
        Some(name) => match gmm_ilp::PricingRule::from_name(name) {
            Some(rule) => Ok(Some(rule)),
            None => Err(CliError::usage(format!(
                "--lp-pricing must be `dantzig`, `partial`, or `devex`, got `{name}`"
            ))),
        },
    }
}

fn solve_mode_from_flags(f: &Flags) -> Result<SolveMode, CliError> {
    match f.get("--solve-mode") {
        None => Ok(SolveMode::Ilp),
        Some(name) => SolveMode::from_name(name).ok_or_else(|| {
            CliError::usage(format!(
                "--solve-mode must be `ilp`, `heuristic`, or `portfolio`, got `{name}`"
            ))
        }),
    }
}

fn backend_from_flags(f: &Flags) -> Result<SolverBackend, CliError> {
    let mut backend = match f.get("--parallel") {
        Some(n) => SolverBackend::Parallel(ParallelOptions {
            threads: n.parse().unwrap_or(0),
            ..ParallelOptions::default()
        }),
        None => SolverBackend::Serial(MipOptions::default()),
    };
    if let Some(basis) = lp_basis_from_flags(f)? {
        backend.set_lp_basis(basis);
    }
    if let Some(pricing) = lp_pricing_from_flags(f)? {
        backend.set_lp_pricing(pricing);
    }
    Ok(backend)
}

fn cmd_solve(args: &[String]) -> Result<(), CliError> {
    let f = Flags::new(args);
    let design = load_design(f.get("--design").ok_or(CliError::Usage("--design required".into()))?)?;
    let board = load_board(f.get("--board").ok_or(CliError::Usage("--board required".into()))?)?;

    let solve_mode = solve_mode_from_flags(&f)?;

    if f.has("--complete") {
        if solve_mode != SolveMode::Ilp {
            return Err(CliError::usage(
                "--solve-mode applies to the two-phase facade; \
                 the --complete baseline is ILP-only",
            ));
        }
        // The complete one-step baseline bypasses the two-phase facade,
        // but the session limits still apply to its (single) MIP solve.
        let mut opts = MapperOptions::new();
        opts.backend = backend_from_flags(&f)?;
        opts.overlap_aware = f.has("--overlap");
        let mut control = gmm_ilp::control::SolveControl::default();
        if f.has("--progress") {
            control.observer = Some(Arc::new(StderrProgress::new()));
        }
        let deadline = f.parse_secs("--deadline-secs")?;
        opts.backend
            .apply_control(deadline, f.parse::<u64>("--node-budget")?, &control);
        let t0 = Instant::now();
        let (assignment, stats, telemetry) = Mapper::new(opts)
            .map_complete_run(&design, &board)
            .map_err(classify_map_err)?;
        let elapsed = t0.elapsed();
        println!(
            "complete formulation: {} vars, {} constraints, {} nonzeros",
            stats.variables, stats.constraints, stats.nonzeros
        );
        println!("solved in {elapsed:?}");
        print_assignment(&design, &board, &assignment.type_of);
        // The solver's own stop reason decides the exit: a deadline that
        // fired mid-solve left a best-effort incumbent, not a proven
        // optimum — same exit-5 contract as the facade path.
        if let Some(reason @ (StopReason::Deadline | StopReason::Cancelled)) =
            telemetry.stop_reason
        {
            return Err(CliError::Interrupted(format!(
                "{} after {elapsed:?}; the assignment above is best-effort, \
                 not proven optimal",
                reason.as_str()
            )));
        }
        return Ok(());
    }

    // Everything else goes through the unified facade.
    let mut request = MapRequest::new(design.clone(), board.clone())
        .backend(backend_from_flags(&f)?)
        .overlap_aware(f.has("--overlap"))
        .solve_mode(solve_mode);
    if f.has("--ilp-detailed") {
        request = request.strategy(DetailedStrategy::Ilp(DetailedIlpOptions::default()));
    }
    if let Some(d) = f.parse_secs("--deadline-secs")? {
        request = request.deadline(d);
    }
    if let Some(n) = f.parse::<u64>("--node-budget")? {
        request = request.node_budget(n);
    }
    if f.has("--progress") {
        request = request.observer(Arc::new(StderrProgress::new()));
    }

    let report = request.execute().map_err(|e| match e {
        gmm_api::ApiError::Map(me) => classify_map_err(me),
        other => CliError::internal(other.to_string()),
    })?;

    println!(
        "termination: {} ({} nodes, {} pivots, {} warm-started, {} refactorizations, {} retries)",
        report.termination,
        report.nodes_explored,
        report.lp_iterations,
        report.warm_started_nodes,
        report.refactorizations,
        report.retries
    );
    if let Some(h) = report.heuristic_objective {
        println!(
            "heuristic incumbent: {h:.3}{}",
            if report.proved_optimal_from_heuristic {
                " — the ILP proved it optimal"
            } else {
                ""
            }
        );
    }
    if let Some(out) = &report.outcome {
        println!(
            "mapped {} segments in {:?} (global {:?}, detailed {:?})",
            design.num_segments(),
            report.total_time,
            report.global_time,
            report.detailed_time,
        );
        print_assignment(&design, &board, &out.global.type_of);
        println!(
            "cost: latency {:.0}, pin-delay {:.0}, pin-io {:.0}",
            out.cost.latency, out.cost.pin_delay, out.cost.pin_io
        );
        println!(
            "fragments: {}, instances used: {}",
            out.detailed.fragments.len(),
            out.detailed.instances_used()
        );
        if let Some(path) = f.get("--out") {
            write_json(path, &out.detailed)?;
            println!("detailed mapping written to {path}");
        }
    }
    match report.termination {
        Termination::Optimal | Termination::Feasible => Ok(()),
        Termination::Infeasible => Err(CliError::Infeasible(
            report
                .diagnostic
                .unwrap_or_else(|| "board cannot host the design".into()),
        )),
        Termination::DeadlineExceeded => Err(CliError::Interrupted(format!(
            "deadline exceeded after {:?} ({} nodes explored{})",
            report.total_time,
            report.nodes_explored,
            if report.outcome.is_some() {
                "; best-effort mapping printed above"
            } else {
                ""
            }
        ))),
        Termination::Cancelled => Err(CliError::Interrupted(format!(
            "cancelled after {:?}",
            report.total_time
        ))),
    }
}

fn print_assignment(design: &Design, board: &Board, type_of: &[gmm_arch::BankTypeId]) {
    let mut counts = vec![0usize; board.num_types()];
    for t in type_of {
        counts[t.0] += 1;
    }
    for (t, bank) in board.iter() {
        println!("  {:<24} <- {} segments", bank.name, counts[t.0]);
    }
    if design.num_segments() <= 24 {
        for (d, seg) in design.iter() {
            println!("    {} -> {}", seg, board.bank(type_of[d.0]).name);
        }
    }
}

fn cmd_gen(args: &[String]) -> Result<(), CliError> {
    let f = Flags::new(args);
    let kind = f
        .positional(0)
        .ok_or(CliError::Usage("gen requires design|board|kernel".into()))?;
    match kind {
        "design" => {
            let segments: usize = f.parse("--segments")?.unwrap_or(16);
            if segments == 0 {
                return Err(CliError::usage("--segments must be at least 1"));
            }
            let seed = f.parse("--seed")?.unwrap_or(0xC0FFEE);
            let design = gmm_workloads::random_design(&RandomDesignSpec {
                segments,
                seed,
                ..RandomDesignSpec::default()
            });
            emit(&f, &design, "design")
        }
        "board" => {
            if let Some(point) = f.get("--table3-point") {
                let idx: usize = point
                    .parse()
                    .map_err(|e| CliError::usage(format!("--table3-point: {e}")))?;
                if !(1..=9).contains(&idx) {
                    return Err(CliError::usage("--table3-point must be 1..9"));
                }
                let board = table3_board(&TABLE3[idx - 1]);
                return emit(&f, &board, "board");
            }
            let device = f.get("--device").unwrap_or("XCV1000");
            let srams = f.parse("--srams")?.unwrap_or(4);
            let board = Board::prototyping(device, srams)
                .map_err(|e| CliError::usage(e.to_string()))?;
            emit(&f, &board, "board")
        }
        "kernel" => {
            let name = f
                .positional(1)
                .ok_or(CliError::Usage("kernel name required".into()))?;
            let design = match name {
                "fir" => kernels::fir(16, 1024),
                "conv2d" => kernels::conv2d(128, 128, 3),
                "fft" => kernels::fft(1024),
                "matmul" => kernels::matmul(64, 8),
                "histogram" => kernels::histogram(128, 128, 256),
                other => return Err(CliError::usage(format!("unknown kernel `{other}`"))),
            };
            emit(&f, &design, "design")
        }
        other => Err(CliError::usage(format!("unknown gen target `{other}`"))),
    }
}

fn emit<T: serde::Serialize>(f: &Flags, value: &T, what: &str) -> Result<(), CliError> {
    match f.get("--out") {
        Some(path) => {
            write_json(path, value)?;
            println!("{what} written to {path}");
            Ok(())
        }
        None => {
            println!(
                "{}",
                serde_json::to_string_pretty(value).map_err(|e| CliError::internal(e.to_string()))?
            );
            Ok(())
        }
    }
}

fn cmd_simulate(args: &[String]) -> Result<(), CliError> {
    let f = Flags::new(args);
    let design = load_design(f.get("--design").ok_or(CliError::Usage("--design required".into()))?)?;
    let board = load_board(f.get("--board").ok_or(CliError::Usage("--board required".into()))?)?;
    let mapper = Mapper::new(MapperOptions::new());
    let out = mapper.map(&design, &board).map_err(classify_map_err)?;
    let trace = match f.parse::<usize>("--random")? {
        Some(n) => Trace::random(&design, n, 42),
        None => Trace::from_profiles(&design),
    };
    let report = simulate_mapping(&design, &board, &out.detailed, &trace)
        .map_err(|e| CliError::internal(e.to_string()))?;
    print!("{}", render_report(&design, &report));
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), CliError> {
    let f = Flags::new(args);
    let design = load_design(f.get("--design").ok_or(CliError::Usage("--design required".into()))?)?;
    let board = load_board(f.get("--board").ok_or(CliError::Usage("--board required".into()))?)?;
    let path = f.get("--mapping").ok_or(CliError::Usage("--mapping required".into()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::input(format!("reading {path}: {e}")))?;
    let mapping: gmm_core::DetailedMapping =
        serde_json::from_str(&text).map_err(|e| CliError::input(format!("parsing {path}: {e}")))?;
    let policy = gmm_core::ValidationPolicy {
        max_port_sharing: f.parse("--max-sharing")?.unwrap_or(1),
    };
    let violations = gmm_core::validate_detailed_policy(&design, &board, &mapping, policy);
    let decode_errors = gmm_sim::check_adder_free(&mapping);
    if violations.is_empty() && decode_errors.is_empty() {
        println!(
            "OK: {} fragments, {} instances, adder-free decode",
            mapping.fragments.len(),
            mapping.instances_used()
        );
        Ok(())
    } else {
        for v in &violations {
            eprintln!("violation: {v:?}");
        }
        for (i, e) in &decode_errors {
            eprintln!("fragment {i}: {e}");
        }
        Err(CliError::internal(format!(
            "{} violations, {} decode errors",
            violations.len(),
            decode_errors.len()
        )))
    }
}

fn cmd_export(args: &[String]) -> Result<(), CliError> {
    let f = Flags::new(args);
    let design = load_design(f.get("--design").ok_or(CliError::Usage("--design required".into()))?)?;
    let board = load_board(f.get("--board").ok_or(CliError::Usage("--board required".into()))?)?;
    let pre = gmm_core::PreTable::build(&design, &board);
    let matrix = gmm_core::CostMatrix::build(&design, &board, &pre);
    let weights = CostWeights::default();
    let model = if f.has("--complete") {
        gmm_core::complete::build_complete_model(&design, &board, &pre, &matrix, &weights, false)
            .map_err(classify_map_err)?
            .model
    } else {
        gmm_core::global::build_global_model(
            &design, &board, &pre, &matrix, &weights, false, &[],
        )
        .map_err(classify_map_err)?
        .model
    };
    let text = match f.get("--format").unwrap_or("mps") {
        "mps" => gmm_ilp::io::to_mps(&model),
        "lp" => gmm_ilp::io::to_lp(&model),
        other => return Err(CliError::usage(format!("unknown format `{other}` (mps|lp)"))),
    };
    match f.get("--out") {
        Some(path) => {
            std::fs::write(path, &text)
                .map_err(|e| CliError::internal(format!("writing {path}: {e}")))?;
            println!(
                "wrote {} ({} vars, {} constraints)",
                path,
                model.num_vars(),
                model.num_constraints()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// serve / batch — the batch mapping service front end
// ---------------------------------------------------------------------------

fn job_config_from_flags(f: &Flags) -> Result<JobConfig, CliError> {
    Ok(JobConfig {
        lp_basis: lp_basis_from_flags(f)?
            .map(LpBasis::from)
            .unwrap_or(LpBasis::Lu),
        lp_pricing: lp_pricing_from_flags(f)?
            .map(LpPricing::from)
            .unwrap_or(LpPricing::Dantzig),
        overlap_aware: f.has("--overlap"),
        detailed_ilp: f.has("--ilp-detailed"),
        solve_mode: solve_mode_from_flags(f)?,
    })
}

fn queue_options_from_flags(f: &Flags) -> Result<QueueOptions, CliError> {
    let mut opts = QueueOptions::default();
    opts.workers = f.parse("--workers")?.unwrap_or(0);
    opts.cache_shards = f.parse("--cache-shards")?.unwrap_or(opts.cache_shards);
    opts.cache_cap = f.parse("--cache-cap")?.unwrap_or(opts.cache_cap);
    opts.retain_jobs = f.parse("--retain-jobs")?.unwrap_or(opts.retain_jobs);
    opts.retain_age = f.parse_secs("--retain-secs")?;
    opts.job_time_limit = f.parse_secs("--time-limit-secs")?;
    opts.max_inflight = f.parse("--max-inflight")?.unwrap_or(0);
    if !f.has("--no-persist") {
        opts.persist_dir = f.get("--cache-dir").map(std::path::PathBuf::from);
    }
    // A queue-wide policy only when the flag is present: `serve` forces
    // every client's jobs, local `batch` just mirrors its own job config.
    if f.get("--solve-mode").is_some() {
        opts.solve_mode = Some(solve_mode_from_flags(f)?);
    }
    Ok(opts)
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let f = Flags::new(args);
    let addr = f.get("--addr").unwrap_or("127.0.0.1:7171");
    let queue = Arc::new(JobQueue::new(queue_options_from_flags(&f)?));
    let workers = queue.num_workers();
    let server = MapServer::start(addr, queue)
        .map_err(|e| CliError::internal(format!("binding {addr}: {e}")))?;
    println!(
        "mapsrv listening on {} ({} workers); send {{\"verb\":\"shutdown\"}} to stop",
        server.local_addr(),
        workers
    );
    server.join();
    println!("mapsrv stopped");
    Ok(())
}

fn cmd_route(args: &[String]) -> Result<(), CliError> {
    let f = Flags::new(args);
    // `--backends a,b,c` and repeated `--backends` both work, mixed.
    let backends: Vec<String> = f
        .get_all("--backends")
        .iter()
        .flat_map(|v| v.split(','))
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if backends.is_empty() {
        return Err(CliError::usage(
            "route needs --backends host:port[,host:port...]",
        ));
    }
    let addr = f.get("--addr").unwrap_or("127.0.0.1:7272");
    let mut opts = gmm_cluster::RouterOptions::new(backends);
    opts.vnodes = f.parse("--vnodes")?.unwrap_or(0);
    opts.peer_fill = f.has("--peer-fill");
    let n = opts.backends.len();
    let peer_fill = opts.peer_fill;
    let router = gmm_cluster::Router::start(addr, opts)
        .map_err(|e| CliError::internal(format!("binding {addr}: {e}")))?;
    println!(
        "route listening on {} over {} backend(s) (peer-fill {}); \
         send {{\"verb\":\"shutdown\"}} to stop",
        router.local_addr(),
        n,
        if peer_fill { "on" } else { "off" },
    );
    router.join();
    println!("route stopped");
    Ok(())
}

/// One instance headed into the batch queue.
struct BatchInstance {
    name: String,
    design: Design,
    board: Board,
}

/// A design/board pair as stored in a `--dir` instance file.
#[derive(serde::Deserialize)]
struct InstanceFile {
    design: Design,
    board: Board,
}

fn load_batch_instances(f: &Flags) -> Result<Vec<BatchInstance>, CliError> {
    if let Some(dir) = f.get("--dir") {
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| CliError::input(format!("reading {dir}: {e}")))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(CliError::input(format!("{dir} contains no .json instances")));
        }
        let mut out = Vec::with_capacity(paths.len());
        for p in paths {
            let text = std::fs::read_to_string(&p)
                .map_err(|e| CliError::input(format!("reading {}: {e}", p.display())))?;
            let inst: InstanceFile = serde_json::from_str(&text)
                .map_err(|e| CliError::input(format!("parsing {}: {e}", p.display())))?;
            out.push(BatchInstance {
                name: p
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| p.display().to_string()),
                design: inst.design,
                board: inst.board,
            });
        }
        return Ok(out);
    }

    if let Some(path) = f.get("--manifest") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::input(format!("reading {path}: {e}")))?;
        let value: serde::Value = serde_json::from_str(&text)
            .map_err(|e| CliError::input(format!("parsing {path}: {e}")))?;
        let entries = value
            .as_array()
            .ok_or_else(|| CliError::input(format!("{path}: manifest must be a JSON array")))?;
        let base = std::path::Path::new(path).parent().unwrap_or(std::path::Path::new("."));
        let resolve = |p: &str| {
            let pb = std::path::Path::new(p);
            if pb.is_absolute() {
                pb.to_path_buf()
            } else {
                base.join(pb)
            }
        };
        let mut out = Vec::with_capacity(entries.len());
        for (i, e) in entries.iter().enumerate() {
            let design_path = e
                .get("design")
                .and_then(|v| v.as_str())
                .ok_or_else(|| CliError::input(format!("{path}: entry {i} missing `design`")))?;
            let board_path = e
                .get("board")
                .and_then(|v| v.as_str())
                .ok_or_else(|| CliError::input(format!("{path}: entry {i} missing `board`")))?;
            let name = e
                .get("name")
                .and_then(|v| v.as_str())
                .map(str::to_owned)
                .unwrap_or_else(|| format!("job{i}"));
            out.push(BatchInstance {
                name,
                design: load_design(&resolve(design_path).display().to_string())?,
                board: load_board(&resolve(board_path).display().to_string())?,
            });
        }
        if out.is_empty() {
            return Err(CliError::input(format!("{path}: manifest is empty")));
        }
        return Ok(out);
    }

    if let Some(n) = f.parse::<usize>("--stream")? {
        if n == 0 {
            return Err(CliError::usage("--stream must be at least 1"));
        }
        let seed = f.parse("--seed")?.unwrap_or(0xBEEF);
        let spec = StreamSpec {
            seed,
            ..StreamSpec::default()
        };
        let into_batch = |inst: gmm_workloads::StreamInstance| BatchInstance {
            name: inst.name,
            design: inst.design,
            board: inst.board,
        };
        // --distinct D cycles N submissions through D distinct instances
        // (retention soak shape); without it every instance is distinct.
        return match f.parse::<usize>("--distinct")? {
            Some(0) => Err(CliError::usage("--distinct must be at least 1")),
            Some(d) => Ok(cycling_instances(spec, d).take(n).map(into_batch).collect()),
            None => Ok(stream_instances(spec).take(n).map(into_batch).collect()),
        };
    }

    Err(CliError::usage(
        "batch needs an instance source: --dir, --manifest, or --stream N",
    ))
}

struct BatchRow {
    name: String,
    state: JobState,
    cached: bool,
    objective: Option<f64>,
    error: Option<String>,
    /// Full termination of the solve session, when known.
    termination: Option<Termination>,
    /// Full canonical solution JSON for verification.
    solution_json: Option<String>,
}

/// Render one live event to stderr (`batch --progress`).
fn render_batch_event(ev: &JobEvent, names: &std::collections::HashMap<u64, String>, t0: Instant) {
    let stamp = t0.elapsed().as_secs_f64();
    let name = |job: u64| {
        names
            .get(&job)
            .map(String::as_str)
            .unwrap_or("?")
            .to_string()
    };
    match ev {
        JobEvent::State {
            job,
            state,
            termination,
        } => match termination {
            Some(t) => eprintln!(
                "[{stamp:>7.3}s] job {job} ({}) state    {} [{}]",
                name(*job),
                state.as_str(),
                t.as_str()
            ),
            None => eprintln!(
                "[{stamp:>7.3}s] job {job} ({}) state    {}",
                name(*job),
                state.as_str()
            ),
        },
        JobEvent::Progress { job, frame } => match frame {
            ProgressFrame::Phase { phase } => {
                eprintln!("[{stamp:>7.3}s] job {job} ({}) phase    {phase}", name(*job))
            }
            ProgressFrame::Incumbent { objective, nodes } => eprintln!(
                "[{stamp:>7.3}s] job {job} ({}) incumbent {objective:.3} (node {nodes})",
                name(*job)
            ),
            ProgressFrame::Nodes { nodes } => {
                eprintln!("[{stamp:>7.3}s] job {job} ({}) nodes    {nodes}", name(*job))
            }
        },
        JobEvent::Stats(d) => eprintln!(
            "[{stamp:>7.3}s] stats depth {} p50 {}ms p95 {}ms (+{} done, +{} failed)",
            d.queue_depth, d.latency_p50_ms, d.latency_p95_ms, d.jobs_completed, d.jobs_failed
        ),
    }
}

fn cmd_batch(args: &[String]) -> Result<(), CliError> {
    let f = Flags::new(args);
    let instances = load_batch_instances(&f)?;
    let config = job_config_from_flags(&f)?;
    let repeat: usize = f.parse("--repeat")?.unwrap_or(1).max(1);
    let verify = f.has("--verify");
    if verify && repeat < 2 {
        return Err(CliError::usage("--verify needs --repeat 2 or more"));
    }
    let job_deadline = f.parse_secs("--job-deadline-secs")?;
    let progress = f.has("--progress");
    let round_timeout = Duration::from_secs(600);

    let t0 = Instant::now();
    // Local and remote runs share one code path: a multiplexed Session
    // that submits the whole round in one batch, watches every job, and
    // waits by consuming the event stream — no sleep-polling in either
    // mode, and remote --progress renders the same live events local
    // runs see.
    let mut session = if let Some(addr) = f.get("--addr") {
        for local_only in [
            "--workers",
            "--cache-shards",
            "--cache-cap",
            "--cache-dir",
            "--no-persist",
            "--retain-jobs",
            "--retain-secs",
            "--time-limit-secs",
            "--max-inflight",
        ] {
            if f.has(local_only) {
                eprintln!(
                    "note: {local_only} configures the in-process queue and is \
                     ignored with --addr (the server's settings apply)"
                );
            }
        }
        Session::connect(addr)
            .map_err(|e| CliError::internal(format!("connecting to {addr}: {e}")))?
    } else {
        Session::local(Arc::new(JobQueue::new(queue_options_from_flags(&f)?)))
    };
    // Without --progress only state frames are needed (they drive the
    // waiting); skip generating/shipping solver progress traffic.
    session.stream_progress(progress);

    let client_err = |e: gmm_service::ClientError| CliError::internal(e.to_string());
    let mut rounds: Vec<Vec<BatchRow>> = Vec::with_capacity(repeat);
    for _ in 0..repeat {
        let specs: Vec<SubmitSpec> = instances
            .iter()
            .map(|inst| {
                let mut spec = SubmitSpec::new(
                    inst.design.clone(),
                    inst.board.clone(),
                    config.clone(),
                );
                if let Some(d) = job_deadline {
                    spec = spec.deadline_ms(d.as_millis() as u64);
                }
                spec
            })
            .collect();
        let receipts = session.submit_batch(specs).map_err(client_err)?;
        session.watch_all().map_err(client_err)?;
        if progress {
            let names: std::collections::HashMap<u64, String> = receipts
                .iter()
                .zip(&instances)
                .map(|(r, inst)| (r.job, inst.name.clone()))
                .collect();
            session
                .for_each_event(round_timeout, |ev| render_batch_event(ev, &names, t0))
                .map_err(client_err)?;
        }
        let outcomes = session.wait_all(round_timeout).map_err(|e| match e {
            gmm_service::ClientError::Expired { pending } => CliError::internal(format!(
                "batch timed out after {}s with {pending} job(s) unfinished",
                round_timeout.as_secs()
            )),
            other => client_err(other),
        })?;
        let rows = instances
            .iter()
            .zip(outcomes)
            .map(|(inst, out)| BatchRow {
                name: inst.name.clone(),
                state: out.state,
                cached: out.cached,
                objective: out.objective,
                error: out.error,
                termination: out.termination,
                solution_json: out
                    .solution
                    .as_ref()
                    .map(|s| serde_json::to_string(s).expect("canonical render")),
            })
            .collect();
        rounds.push(rows);
    }

    // In-process runs own the queue, so its failure counter is
    // authoritative even when aggressive --retain-jobs prunes a Failed
    // record to `expired` before this table reads it. (Against --addr the
    // daemon's counter covers every client, so rows are used instead.)
    let mut queue_failed: Option<u64> = None;
    // lint:stats-line-begin — `gmm lint` checks every QueueStats and
    // ServiceStats field is rendered between these markers.
    let stats_line = if let Some(queue) = session.queue().cloned() {
        let s = queue.stats();
        queue_failed = Some(s.failed);
        let line = format!(
            "queue: {} submitted, {} done, {} failed, {} cancelled, {} deadline, \
             {} pruned (retain {}) on {} workers; cache {}/{} hits, {} entries (cap {}), \
             {} evictions; disk {}/{} hits, {} entries, {} corrupt; hints {}/{} hits, \
             {} entries, {} seeded; heur {} solved, {} seeded, {} infeasible; \
             {} events dropped; {} pivots, {} refactorizations \
             (eta peak {}); depth {}, latency p50/p95 {}/{}ms; up {:.1}s",
            s.submitted,
            s.completed,
            s.failed,
            s.cancelled,
            s.deadline,
            s.pruned,
            s.retain_jobs,
            s.workers,
            s.cache.hits,
            s.cache.hits + s.cache.misses,
            s.cache.entries,
            s.cache.capacity,
            s.cache.evictions,
            s.persist.disk_hits,
            s.persist.disk_hits + s.persist.disk_misses,
            s.persist.disk_entries,
            s.persist.disk_corrupt,
            s.persist.hint_hits,
            s.persist.hint_hits + s.persist.hint_misses,
            s.persist.hint_entries,
            s.incumbent_seeded,
            s.heuristic_solved,
            s.heuristic_seeded,
            s.heuristic_infeasible,
            s.events_dropped,
            s.lp_iterations,
            s.refactorizations,
            s.eta_nnz_peak,
            s.queue_depth,
            s.latency_p50_ms,
            s.latency_p95_ms,
            s.uptime.as_secs_f64(),
        );
        queue.shutdown();
        line
    } else if let Ok(s) = session.stats() {
        format!(
            "server: {} submitted, {} done, {} failed, {} cancelled, {} deadline, \
             {} pruned (retain {}) on {} workers; cache {}/{} hits, {} entries (cap {}), \
             {} evictions; disk {}/{} hits, {} entries, {} corrupt; hints {}/{} hits, \
             {} entries, {} seeded; heur {} solved, {} seeded, {} infeasible; \
             conns v1/v2 {}/{}, {} events dropped; {} pivots, \
             {} refactorizations (eta peak {}); depth {}, \
             latency p50/p95 {}/{}ms; up {:.1}s",
            s.jobs_submitted,
            s.jobs_completed,
            s.jobs_failed,
            s.jobs_cancelled,
            s.jobs_deadline,
            s.jobs_pruned,
            s.retain_jobs,
            s.workers,
            s.cache_hits,
            s.cache_hits + s.cache_misses,
            s.cache_entries,
            s.cache_cap,
            s.cache_evictions,
            s.disk_hits,
            s.disk_hits + s.disk_misses,
            s.disk_entries,
            s.disk_corrupt,
            s.hint_hits,
            s.hint_hits + s.hint_misses,
            s.hint_entries,
            s.incumbent_seeded,
            s.heuristic_solved,
            s.heuristic_seeded,
            s.heuristic_infeasible,
            s.proto_versions.v1,
            s.proto_versions.v2,
            s.events_dropped,
            s.lp_iterations,
            s.refactorizations,
            s.eta_nnz_peak,
            s.queue_depth,
            s.latency_p50_ms,
            s.latency_p95_ms,
            s.uptime_ms as f64 / 1000.0,
        )
    } else {
        String::new()
    };
    // lint:stats-line-end
    let elapsed = t0.elapsed();

    // Per-instance table (final round's states; cache column counts rounds).
    println!(
        "{:<28} {:>8} {:>18} {:>7} {:>14}  note",
        "instance", "state", "termination", "cached", "objective"
    );
    let last = rounds.last().expect("repeat >= 1");
    for (i, row) in last.iter().enumerate() {
        let cached_rounds = rounds.iter().filter(|r| r[i].cached).count();
        println!(
            "{:<28} {:>8} {:>18} {:>4}/{:<2} {:>14}  {}",
            row.name,
            row.state.as_str(),
            row.termination.map(|t| t.as_str()).unwrap_or("-"),
            cached_rounds,
            rounds.len(),
            row.objective
                .map(|o| format!("{o:.1}"))
                .unwrap_or_else(|| "-".into()),
            row.error.as_deref().unwrap_or(""),
        );
    }
    // Per-round termination tallies (the ROADMAP's "Termination in the
    // batch summary table" item).
    for (i, round) in rounds.iter().enumerate() {
        let count = |t: Termination| {
            round
                .iter()
                .filter(|r| r.termination == Some(t))
                .count()
        };
        println!(
            "round {:>2}: {} optimal, {} feasible, {} deadline, {} cancelled, {} infeasible",
            i + 1,
            count(Termination::Optimal),
            count(Termination::Feasible),
            count(Termination::DeadlineExceeded),
            count(Termination::Cancelled),
            count(Termination::Infeasible),
        );
    }

    let total_jobs = instances.len() * repeat;
    let row_failed: usize = rounds
        .iter()
        .flat_map(|r| r.iter())
        .filter(|r| r.state == JobState::Failed)
        .count();
    // A pruned record hides its outcome: flag it rather than counting the
    // job as silently fine (or silently failed).
    let expired: usize = rounds
        .iter()
        .flat_map(|r| r.iter())
        .filter(|r| r.state == JobState::Expired)
        .count();
    if expired > 0 {
        eprintln!(
            "note: {expired} job record(s) expired before their outcome was read; \
             raise --retain-jobs (or --retain-secs) to keep batch-sized runs inspectable"
        );
    }
    let failed = row_failed.max(queue_failed.unwrap_or(0) as usize);
    // `reconnects` counts sessions the client re-established mid-batch
    // (server or router restarts survived via `attach`); the soak greps
    // for it staying visible here.
    println!(
        "\n{} instances x {} rounds = {} jobs in {:.2}s ({:.1} jobs/s, {} reconnects)",
        instances.len(),
        repeat,
        total_jobs,
        elapsed.as_secs_f64(),
        total_jobs as f64 / elapsed.as_secs_f64().max(1e-9),
        session.reconnects(),
    );
    if !stats_line.is_empty() {
        println!("{stats_line}");
    }

    if verify {
        verify_rounds(&instances, &rounds)?;
        println!("verify: all repeat rounds byte-identical and replay-identical");
    }

    if failed > 0 {
        return Err(CliError::internal(format!(
            "{failed} of {total_jobs} jobs failed (see table)"
        )));
    }
    // Deadline'd/cancelled jobs are structured outcomes, not failures —
    // but scripts still deserve a dedicated signal (exit 5).
    let interrupted: usize = rounds
        .iter()
        .flat_map(|r| r.iter())
        .filter(|r| matches!(r.state, JobState::Deadline | JobState::Cancelled))
        .count();
    if interrupted > 0 {
        return Err(CliError::Interrupted(format!(
            "{interrupted} of {total_jobs} jobs stopped by deadline/cancellation (see table)"
        )));
    }
    Ok(())
}

/// Schema tag of the `gmm arch-sweep` artifact.
const SWEEP_SCHEMA: &str = "gmm-arch-sweep/v1";

/// One scored architecture in the `gmm-arch-sweep/v1` artifact.
#[derive(Clone, serde::Serialize)]
struct SweepRow {
    name: String,
    capacity_bits: u64,
    instances: u32,
    width: u32,
    total_capacity_bits: u64,
    /// `null` when no suite design solved on this architecture.
    geomean_cost: Option<f64>,
    solved: u64,
    suite: u64,
}

/// The `gmm-arch-sweep/v1` artifact: every scored architecture plus the
/// Pareto front over (geomean cost, total capacity).
#[derive(serde::Serialize)]
struct SweepArtifact {
    schema: String,
    solve_mode: String,
    seed: u64,
    suite: u64,
    architectures: Vec<SweepRow>,
    pareto: Vec<SweepRow>,
}

/// Parse a `--key a,b,c` comma-separated list flag.
fn parse_list<T: std::str::FromStr>(f: &Flags, key: &str) -> Result<Option<Vec<T>>, CliError>
where
    T::Err: std::fmt::Display,
{
    let Some(spec) = f.get(key) else {
        return Ok(None);
    };
    let items: Vec<T> = spec
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .map_err(|e| CliError::usage(format!("{key}: `{s}`: {e}")))
        })
        .collect::<Result<_, _>>()?;
    if items.is_empty() {
        return Err(CliError::usage(format!("{key}: empty list")));
    }
    Ok(Some(items))
}

/// `gmm arch-sweep` — map a design suite onto a grid of candidate memory
/// architectures through the batch queue, score each by geometric-mean
/// mapped cost, and write the Pareto-front artifact.
fn cmd_arch_sweep(args: &[String]) -> Result<(), CliError> {
    let f = Flags::new(args);
    let mut spec = gmm_workloads::SweepSpec::default();
    if let Some(v) = parse_list::<u64>(&f, "--capacities")? {
        spec.capacities = v;
    }
    if let Some(v) = parse_list::<u32>(&f, "--counts")? {
        spec.bank_counts = v;
    }
    if let Some(v) = parse_list::<u32>(&f, "--widths")? {
        spec.widths = v;
    }
    if let Some(n) = f.parse::<usize>("--suite")? {
        if n == 0 {
            return Err(CliError::usage("--suite must be at least 1"));
        }
        spec.suite = n;
    }
    if let Some(s) = f.parse::<u64>("--seed")? {
        spec.seed = s;
    }
    // Portfolio unless overridden: the greedy seed makes a full grid
    // cheap, and the ILP still proves the same optima.
    let mode = match f.get("--solve-mode") {
        None => SolveMode::Portfolio,
        Some(_) => solve_mode_from_flags(&f)?,
    };
    let out = f.get("--out").unwrap_or("SWEEP_arch.json");

    let suite = gmm_workloads::suite_designs(&spec);
    let grid = gmm_workloads::arch_grid(&spec, &suite);
    println!(
        "arch-sweep: {} architectures x {} designs = {} jobs (mode {mode})",
        grid.len(),
        suite.len(),
        grid.len() * suite.len(),
    );

    let config = JobConfig {
        solve_mode: mode,
        ..JobConfig::default()
    };
    let mut queue_opts = QueueOptions::default();
    queue_opts.workers = f.parse("--workers")?.unwrap_or(0);
    let mut session = Session::local(Arc::new(JobQueue::new(queue_opts)));
    session.stream_progress(false);
    let client_err = |e: gmm_service::ClientError| CliError::internal(e.to_string());

    // One flat batch over the whole grid x suite product: work stealing
    // keeps every worker busy across architecture boundaries, and
    // `wait_all` hands outcomes back in submission order.
    let t0 = Instant::now();
    let specs: Vec<SubmitSpec> = grid
        .iter()
        .flat_map(|point| {
            suite.iter().map(|(_, design)| {
                SubmitSpec::new(design.clone(), point.board.clone(), config.clone())
            })
        })
        .collect();
    session.submit_batch(specs).map_err(client_err)?;
    session.watch_all().map_err(client_err)?;
    let outcomes = session
        .wait_all(Duration::from_secs(600))
        .map_err(client_err)?;

    let scores: Vec<gmm_workloads::ArchScore> = grid
        .iter()
        .enumerate()
        .map(|(i, point)| {
            let chunk = &outcomes[i * suite.len()..(i + 1) * suite.len()];
            let costs: Vec<f64> = chunk
                .iter()
                .filter(|o| o.state == JobState::Done)
                .filter_map(|o| o.objective)
                .collect();
            gmm_workloads::ArchScore {
                name: point.name.clone(),
                total_capacity_bits: point.board.total_capacity_bits(),
                geomean_cost: gmm_workloads::geometric_mean(&costs),
                solved: costs.len(),
                suite: suite.len(),
            }
        })
        .collect();
    let front = gmm_workloads::pareto_front(&scores);

    println!(
        "{:<20} {:>9} {:>6} {:>6} {:>12} {:>8} {:>12}  pareto",
        "architecture", "cap/inst", "banks", "width", "total bits", "solved", "geomean"
    );
    for (i, (point, score)) in grid.iter().zip(&scores).enumerate() {
        println!(
            "{:<20} {:>9} {:>6} {:>6} {:>12} {:>5}/{:<2} {:>12}  {}",
            score.name,
            point.capacity_bits,
            point.instances,
            point.width,
            score.total_capacity_bits,
            score.solved,
            score.suite,
            if score.geomean_cost.is_nan() {
                "-".to_string()
            } else {
                format!("{:.2}", score.geomean_cost)
            },
            if front.contains(&i) { "*" } else { "" },
        );
    }
    if let Some(queue) = session.queue().cloned() {
        let s = queue.stats();
        println!(
            "swept {} jobs in {:.2}s; heuristic {} solved, {} seeded, {} infeasible",
            outcomes.len(),
            t0.elapsed().as_secs_f64(),
            s.heuristic_solved,
            s.heuristic_seeded,
            s.heuristic_infeasible,
        );
        queue.shutdown();
    }

    let row = |i: usize| {
        let (point, score) = (&grid[i], &scores[i]);
        SweepRow {
            name: score.name.clone(),
            capacity_bits: point.capacity_bits,
            instances: point.instances,
            width: point.width,
            total_capacity_bits: score.total_capacity_bits,
            // NaN (nothing solved) would leak a bare `NaN` token into the
            // artifact; `null` keeps it strict JSON.
            geomean_cost: (!score.geomean_cost.is_nan()).then_some(score.geomean_cost),
            solved: score.solved as u64,
            suite: score.suite as u64,
        }
    };
    let artifact = SweepArtifact {
        schema: SWEEP_SCHEMA.to_string(),
        solve_mode: mode.as_str().to_string(),
        seed: spec.seed,
        suite: suite.len() as u64,
        architectures: (0..grid.len()).map(row).collect(),
        pareto: front.iter().map(|&i| row(i)).collect(),
    };
    write_json(out, &artifact)?;
    println!(
        "wrote {out} ({} architectures, {} on the Pareto front)",
        grid.len(),
        front.len()
    );

    if scores.iter().all(|s| s.solved == 0) {
        return Err(CliError::internal(
            "no architecture mapped any suite design — the sweep scored nothing",
        ));
    }
    Ok(())
}

/// `gmm bench --service` — the queue/cache throughput benchmark behind
/// `BENCH_service.json`.
fn cmd_bench_service(f: &Flags) -> Result<(), CliError> {
    use gmm_bench::{run_service_bench, service_bench_guard, ServiceBenchConfig};

    let mut cfg = if f.has("--quick") {
        ServiceBenchConfig::quick()
    } else {
        ServiceBenchConfig::full()
    };
    if let Some(seed) = f.parse::<u64>("--seed")? {
        cfg.stream_seed = seed;
    }
    if let Some(n) = f.parse::<usize>("--stream")? {
        // Keep the cap binding (evictions must run) and the hot block
        // nonempty whatever count is asked for.
        cfg.distinct = n.max(2);
        cfg.cache_cap = (cfg.distinct / 2).max(1);
    }
    if let Some(n) = f.parse::<usize>("--backends")? {
        cfg.backends = n;
    }
    let out = f.get("--out").unwrap_or("BENCH_service.json");

    println!(
        "bench --service: {} distinct instances, cache cap {}, {} lap(s) x {} mode(s) on {} workers",
        cfg.distinct,
        cfg.cache_cap,
        cfg.laps,
        cfg.modes.len(),
        cfg.workers,
    );
    let report = run_service_bench(&cfg);

    println!(
        "{:>10} {:>7} {:>9} {:>9} {:>7} {:>9} {:>12} {:>7} {:>7}",
        "mode", "jobs", "jobs/s", "hit-rate", "evict", "pivots", "heur-solved", "seeded", "infeas"
    );
    for m in &report.modes {
        println!(
            "{:>10} {:>7} {:>9.1} {:>9.2} {:>7} {:>9} {:>12} {:>7} {:>7}",
            m.mode,
            m.jobs,
            m.jobs_per_sec,
            m.hit_rate,
            m.cache_evictions,
            m.lp_iterations,
            m.heuristic_solved,
            m.heuristic_seeded,
            m.heuristic_infeasible,
        );
    }
    if let Some(c) = &report.cluster {
        println!(
            "{:>10} {:>7} {:>9.1} routed over {} backends x {} workers ({:.2}x single-node)",
            "cluster", c.jobs, c.jobs_per_sec, c.backends, c.workers_per_backend, c.vs_single_node,
        );
    }

    // Artifact first, verdict second — a failing run's numbers are
    // exactly the ones worth inspecting.
    std::fs::write(out, report.to_json() + "\n")
        .map_err(|e| CliError::internal(format!("writing {out}: {e}")))?;
    println!("wrote {out}");

    let violations = service_bench_guard(&report);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("guard: {v}");
        }
        return Err(CliError::internal(format!(
            "{} service-bench guard violation(s)",
            violations.len()
        )));
    }
    Ok(())
}

/// `gmm bench` — the simplex pricing ablation behind `BENCH_simplex.json`.
fn cmd_bench(args: &[String]) -> Result<(), CliError> {
    use gmm_bench::{run_trajectory_with, TrajectoryConfig};
    use gmm_ilp::PricingRule;

    let f = Flags::new(args);
    if f.has("--service") {
        return cmd_bench_service(&f);
    }
    let mut cfg = if f.has("--quick") {
        TrajectoryConfig::quick()
    } else {
        TrajectoryConfig::full()
    };
    if let Some(n) = f.parse::<usize>("--stream")? {
        cfg.stream_count = n.max(1);
    }
    if let Some(seed) = f.parse::<u64>("--seed")? {
        cfg.stream_seed = seed;
    }
    if let Some(spec) = f.get("--points") {
        cfg.table3_points = parse_points(spec)?;
    }
    if let Some(cap) = f.parse_secs("--cap-secs")? {
        cfg.point_cap = cap;
    }
    let out = f.get("--out").unwrap_or("BENCH_simplex.json");

    println!(
        "bench: {} stream instances + table3 points {:?} per rule ({} rules, cap {:?}/point)",
        cfg.stream_count,
        cfg.table3_points,
        cfg.rules.len(),
        cfg.point_cap,
    );
    let observer: Option<Arc<dyn gmm_ilp::control::ProgressObserver>> = f
        .has("--progress")
        .then(|| Arc::new(StderrProgress::new()) as Arc<dyn gmm_ilp::control::ProgressObserver>);
    let report = run_trajectory_with(&cfg, observer);

    println!(
        "{:>8} {:>10} {:>12} {:>11} {:>10} {:>10} {:>9}",
        "rule", "inst/s", "pivots/s", "nodes/s", "pivots", "refactors", "eta-peak"
    );
    for r in &report.rules {
        println!(
            "{:>8} {:>10.1} {:>12.0} {:>11.0} {:>10} {:>10} {:>9}",
            r.rule,
            r.stream.instances_per_sec,
            r.stream.pivots_per_sec,
            r.stream.nodes_per_sec,
            r.stream.pivots,
            r.stream.refactorizations,
            r.stream.eta_nnz_peak,
        );
    }

    // Write the artifact before any guard verdict: a failing run's
    // numbers are exactly the ones worth inspecting.
    std::fs::write(out, report.to_json() + "\n")
        .map_err(|e| CliError::internal(format!("writing {out}: {e}")))?;
    println!("wrote {out}");

    // CI guard: the devex update is designed to be cheap (one extra flop
    // per scanned column plus an O(1) pivot update); if its pivot loop
    // throughput falls well below dantzig's in the same run, the rule has
    // regressed from an approximation into a tax. 0.8x absorbs run noise.
    if let (Some(d), Some(x)) = (
        report.rule(PricingRule::Dantzig),
        report.rule(PricingRule::Devex),
    ) {
        let floor = 0.8 * d.stream.pivots_per_sec;
        if x.stream.pivots_per_sec < floor {
            return Err(CliError::internal(format!(
                "devex pivot throughput regressed: {:.0} pivots/s < 0.8 x dantzig {:.0} pivots/s",
                x.stream.pivots_per_sec, d.stream.pivots_per_sec,
            )));
        }
    }
    Ok(())
}

/// Check that every repeat round returned byte-identical payloads and that
/// the cached mapping replays identically in the simulator.
///
/// Only `done` rows participate: a deadline'd/cancelled job's best-effort
/// payload is a function of wall-clock timing, so byte-identity across
/// rounds is not a promise the service makes for it.
fn verify_rounds(instances: &[BatchInstance], rounds: &[Vec<BatchRow>]) -> Result<(), CliError> {
    let cold = &rounds[0];
    for (i, inst) in instances.iter().enumerate() {
        if cold[i].state != JobState::Done {
            continue; // failed/deadline'd/cancelled cold solves are the caller's report
        }
        let Some(cold_json) = cold[i].solution_json.as_deref() else {
            continue;
        };
        for round in &rounds[1..] {
            // A done cold solve is cached; its resubmission must hit the
            // cache and be done too — anything else is a real anomaly.
            let Some(warm_json) = round[i].solution_json.as_deref() else {
                return Err(CliError::internal(format!(
                    "{}: cold solve succeeded but a repeat round {}",
                    inst.name,
                    if round[i].state == JobState::Done {
                        "returned no payload".to_string()
                    } else {
                        format!("ended {}", round[i].state.as_str())
                    }
                )));
            };
            let cold_detailed = extract_detailed(cold_json, &inst.name)?;
            let warm_detailed = extract_detailed(warm_json, &inst.name)?;
            gmm_sim::validate_cache_hit(&inst.design, &inst.board, &cold_detailed, &warm_detailed)
                .map_err(|e| CliError::internal(format!("{}: {e}", inst.name)))?;
            if cold_json != warm_json {
                return Err(CliError::internal(format!(
                    "{}: full payloads differ outside the detailed mapping",
                    inst.name
                )));
            }
        }
    }
    Ok(())
}

/// Pull the canonical `detailed` subtree back out of a solution payload.
fn extract_detailed(solution_json: &str, name: &str) -> Result<String, CliError> {
    let value: serde::Value = serde_json::from_str(solution_json)
        .map_err(|e| CliError::internal(format!("{name}: solution does not parse: {e}")))?;
    let detailed = value
        .get("detailed")
        .ok_or_else(|| CliError::internal(format!("{name}: solution has no `detailed` field")))?;
    serde_json::to_string(detailed).map_err(|e| CliError::internal(e.to_string()))
}

/// `gmm check` — run the concurrency model checker's clean models and
/// fail on any invariant violation or an exploration below the floor.
fn cmd_check(args: &[String]) -> Result<(), CliError> {
    if !cfg!(debug_assertions) {
        return Err(CliError::usage(
            "`gmm check` needs a debug build: the schedule points and lock \
             instrumentation are compiled out of release binaries (run \
             `cargo run -- check`)",
        ));
    }
    let f = Flags::new(args);
    let mut opts = ExploreOpts::default();
    if let Some(v) = f.parse("--preemption-bound")? {
        opts.preemption_bound = v;
    }
    if let Some(v) = f.parse("--min-schedules")? {
        opts.min_schedules = v;
    }
    if let Some(v) = f.parse("--max-schedules")? {
        opts.max_schedules = v;
    }
    if let Some(v) = f.parse("--seed")? {
        opts.seed = v;
    }
    // The floor is a promise; never let the cap silently undercut it.
    opts.max_schedules = opts.max_schedules.max(opts.min_schedules);
    let only = f.get("--model");

    let models = gmm_check::models::clean_models();
    if let Some(name) = only {
        if !models.iter().any(|m| m.name == name) {
            return Err(CliError::usage(format!(
                "unknown model `{name}` (have: {})",
                models.iter().map(|m| m.name).collect::<Vec<_>>().join(", ")
            )));
        }
    }
    let mut failures = 0usize;
    for model in models {
        if only.is_some_and(|o| o != model.name) {
            continue;
        }
        let t0 = Instant::now();
        let report = explore(model.name, &opts, model.build);
        println!(
            "model {:<7} {:>5} schedules explored ({} DFS{}) in {:.2}s — {}",
            model.name,
            report.schedules,
            report.dfs_schedules,
            if report.dfs_complete { ", space exhausted" } else { "" },
            t0.elapsed().as_secs_f64(),
            model.covers,
        );
        if let Some(failure) = &report.failure {
            println!("  FAILED {failure}");
            failures += 1;
        } else if report.schedules < opts.min_schedules {
            println!(
                "  FAILED only {} schedules explored (floor {})",
                report.schedules, opts.min_schedules
            );
            failures += 1;
        }
    }
    if failures > 0 {
        return Err(CliError::internal(format!("{failures} model(s) failed")));
    }
    Ok(())
}

/// `gmm lint` — run the workspace invariant scanner; nonzero on any
/// finding not covered by `lint.allow`.
fn cmd_lint(args: &[String]) -> Result<(), CliError> {
    let f = Flags::new(args);
    let root = match f.get("--root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir()
                .map_err(|e| CliError::internal(format!("current dir: {e}")))?;
            gmm_check::lint::find_repo_root(&cwd).ok_or_else(|| {
                CliError::input(
                    "no workspace root (a Cargo.toml with [workspace]) above the \
                     current directory; pass --root",
                )
            })?
        }
    };
    let report = gmm_check::lint::run(&root)
        .map_err(|e| CliError::input(format!("lint scan under {}: {e}", root.display())))?;
    for finding in &report.findings {
        println!("{finding}");
    }
    println!(
        "lint: {} file(s) scanned, {} finding(s), {} allowed by lint.allow",
        report.files_scanned,
        report.findings.len(),
        report.allowed
    );
    if report.clean() {
        Ok(())
    } else {
        Err(CliError::internal(format!(
            "{} lint finding(s)",
            report.findings.len()
        )))
    }
}

fn cmd_table1() -> Result<(), CliError> {
    println!("Table 1: FPGA on-chip RAMs\n");
    println!(
        "{:<14} {:<10} {:>12} {:>8}  configurations",
        "Family", "RAM", "# banks", "bits"
    );
    let rows = [
        ("Xilinx Virtex", gmm_arch::Family::Virtex, gmm_arch::VIRTEX),
        ("Altera Flex10K", gmm_arch::Family::Flex10K, gmm_arch::FLEX10K),
        ("Altera Apex E", gmm_arch::Family::Apex20K, gmm_arch::APEX20K),
    ];
    for (label, family, devices) in rows {
        let min = devices.iter().map(|d| d.ram_blocks).min().unwrap();
        let max = devices.iter().map(|d| d.ram_blocks).max().unwrap();
        let configs: Vec<String> = family
            .configurations()
            .iter()
            .map(|c| c.to_string())
            .collect();
        println!(
            "{:<14} {:<10} {:>5} -> {:<4} {:>8}  {}",
            label,
            family.ram_name(),
            min,
            max,
            family.block_bits(),
            configs.join(", ")
        );
    }
    Ok(())
}

fn cmd_table2(args: &[String]) -> Result<(), CliError> {
    let f = Flags::new(args);
    let ports: u32 = f.parse("--ports")?.unwrap_or(3);
    let depth: u32 = f.parse("--depth")?.unwrap_or(16);
    println!("Table 2: allocation options of a {ports}-port {depth}-word bank\n");
    println!("{:<20} accepted-by-Figure-3", "words per port");
    for opt in enumerate_port_allocations(ports, depth) {
        let words: Vec<String> = opt.words.iter().map(u32::to_string).collect();
        println!(
            "{:<20} {}",
            words.join(", "),
            if opt.accepted { "yes" } else { "NO (rejected)" }
        );
    }
    Ok(())
}

fn cmd_fig2() -> Result<(), CliError> {
    use gmm_arch::{BankType, Placement, RamConfig};
    let bank = BankType::new(
        "fig2",
        12,
        3,
        vec![
            RamConfig::new(128, 1),
            RamConfig::new(64, 2),
            RamConfig::new(32, 4),
            RamConfig::new(16, 8),
        ],
        1,
        1,
        Placement::OnChip,
    )
    .map_err(|e| CliError::internal(e.to_string()))?;
    let e = gmm_core::preprocess::preprocess_pair(&bank, 55, 17);
    println!("Figure 2: a 55x17 data structure on a 3-port bank");
    println!("configurations: 128x1, 64x2, 32x4, 16x8\n");
    println!("alpha = {}   beta = {}", e.split.alpha, e.split.beta);
    println!(
        "full columns = {}, remainder width = {}",
        e.split.full_cols, e.split.rem_width
    );
    println!(
        "full rows = {}, remainder depth = {}\n",
        e.full_rows, e.rem_depth
    );
    println!("FP  (full instances)        = {:>3} ports", e.fp);
    println!("WP  (width-remainder col)   = {:>3} ports", e.wp);
    println!("DP  (depth-remainder row)   = {:>3} ports", e.dp);
    println!("WDP (corner)                = {:>3} ports", e.wdp);
    println!("CP  = {}", e.cp());
    println!("CW  = {}   CD = {}", e.cw, e.cd);
    Ok(())
}

fn cmd_table3(args: &[String]) -> Result<(), CliError> {
    let f = Flags::new(args);
    let cap = f
        .parse_secs("--cap-secs")?
        .unwrap_or(Duration::from_secs(60));
    let points: Vec<usize> = match f.get("--points") {
        Some(spec) => parse_points(spec)?,
        None => (1..=9).collect(),
    };
    let threads: usize = f.parse("--parallel")?.unwrap_or(0);

    println!("Table 3: ILP execution times, complete vs global/detailed");
    println!("(time cap per solve: {cap:?}; '>' marks capped runs)\n");
    println!(
        "{:>5} {:>9} {:>7} {:>7} {:>8} | {:>12} {:>12} {:>8} | {:>10} {:>10}",
        "point",
        "#segs",
        "#banks",
        "#ports",
        "#configs",
        "complete(s)",
        "global(s)",
        "speedup",
        "paper-c(s)",
        "paper-g(s)"
    );

    for idx in points {
        let point = TABLE3[idx - 1];
        let design = table3_design(&point, 0xF00D);
        let board = table3_board(&point);

        let mip = MipOptions {
            time_limit: Some(cap),
            ..MipOptions::default()
        };
        let mut backend = if threads > 0 {
            SolverBackend::Parallel(ParallelOptions {
                threads,
                mip: mip.clone(),
            })
        } else {
            SolverBackend::Serial(mip)
        };
        if let Some(basis) = lp_basis_from_flags(&f)? {
            backend.set_lp_basis(basis);
        }
        if let Some(pricing) = lp_pricing_from_flags(&f)? {
            backend.set_lp_pricing(pricing);
        }
        let mut opts = MapperOptions::new();
        opts.backend = backend;
        let mapper = Mapper::new(opts);

        // Global/detailed (includes all pre-processing, as in the paper).
        let t0 = Instant::now();
        let two_phase = mapper.map(&design, &board);
        let global_time = t0.elapsed();

        // Complete.
        let t1 = Instant::now();
        let complete = mapper.map_complete(&design, &board);
        let complete_time = t1.elapsed();

        let complete_capped = complete_time >= cap;
        let gsecs = global_time.as_secs_f64();
        let csecs = complete_time.as_secs_f64();
        let speedup = csecs / gsecs.max(1e-9);
        let status = match (&two_phase, &complete) {
            (Ok(a), Ok((b, _))) => {
                let w = CostWeights::default();
                let ca = a.cost.weighted(&w);
                let cb = b.cost.weighted(&w);
                if (ca - cb).abs() < 1e-6 || complete_capped {
                    ""
                } else {
                    " COST-MISMATCH"
                }
            }
            (Err(e), _) => {
                // Global/detailed failing is a real problem worth flagging.
                println!("  global/detailed error: {e}");
                " GLOBAL-FAILED"
            }
            (Ok(_), Err(_)) if complete_capped => "", // cap marker suffices
            (Ok(_), Err(_)) => " (complete failed)",
        };
        println!(
            "{:>5} {:>9} {:>7} {:>7} {:>8} | {}{:>11.2} {:>12.2} {:>7.1}x | {:>10.1} {:>10.1}{}",
            point.index,
            point.segments,
            point.banks,
            point.ports,
            point.configs,
            if complete_capped { ">" } else { " " },
            csecs,
            gsecs,
            speedup,
            point.paper_complete_secs,
            point.paper_global_secs,
            status,
        );
    }
    println!("\npaper platform: CPLEX on a 248 MHz SUN Ultra-30; shapes, not");
    println!("absolute seconds, are expected to match (see EXPERIMENTS.md).");
    Ok(())
}

fn parse_points(spec: &str) -> Result<Vec<usize>, CliError> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        if let Some((a, b)) = part.split_once("..") {
            let a: usize = a.parse().map_err(|e| CliError::usage(format!("--points: {e}")))?;
            let b: usize = b.parse().map_err(|e| CliError::usage(format!("--points: {e}")))?;
            out.extend(a..=b);
        } else {
            out.push(
                part.parse()
                    .map_err(|e| CliError::usage(format!("--points: {e}")))?,
            );
        }
    }
    if out.iter().any(|&p| !(1..=9).contains(&p)) {
        return Err(CliError::usage("--points must be within 1..9"));
    }
    Ok(out)
}
