//! `gmm` — command-line front end for the FPGA memory mapper.
//!
//! Subcommands:
//!
//! * `map`      — map a design onto a board (global/detailed or complete)
//! * `gen`      — generate designs/boards (random, kernels, Table 3)
//! * `simulate` — map a design and replay a trace on the result
//! * `table1`   — print the paper's Table 1 device catalog
//! * `table2`   — print the paper's Table 2 allocation options
//! * `fig2`     — run the paper's Figure 2 worked example
//! * `table3`   — regenerate Table 3 / Figure 4 (complete vs global)

use std::process::ExitCode;
use std::time::{Duration, Instant};

use gmm_arch::Board;
use gmm_core::pipeline::{DetailedStrategy, Mapper, MapperOptions};
use gmm_core::{
    enumerate_port_allocations, CostWeights, DetailedIlpOptions, SolverBackend,
};
use gmm_design::Design;
use gmm_ilp::branch::MipOptions;
use gmm_ilp::parallel::ParallelOptions;
use gmm_sim::{render_report, simulate_mapping, Trace};
use gmm_workloads::{kernels, table3_board, table3_design, RandomDesignSpec, TABLE3};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "map" => cmd_map(rest),
        "gen" => cmd_gen(rest),
        "simulate" => cmd_simulate(rest),
        "validate" => cmd_validate(rest),
        "export" => cmd_export(rest),
        "table1" => cmd_table1(),
        "table2" => cmd_table2(rest),
        "fig2" => cmd_fig2(),
        "table3" => cmd_table3(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
gmm — global/detailed memory mapping for FPGA-based reconfigurable systems

USAGE:
  gmm map --design <d.json> --board <b.json> [--complete] [--parallel N]
          [--overlap] [--ilp-detailed] [--lp-basis dense|lu]
          [--out <mapping.json>]
  gmm gen design --segments N [--seed S] [--out <f.json>]
  gmm gen board (--device XCV1000 [--srams N] | --table3-point I) [--out f]
  gmm gen kernel <fir|conv2d|fft|matmul|histogram> [--out <f.json>]
  gmm simulate --design <d.json> --board <b.json> [--random N]
  gmm validate --design <d.json> --board <b.json> --mapping <m.json>
               [--max-sharing N]
  gmm export --design <d.json> --board <b.json> [--complete]
             [--format mps|lp] [--out <file>]
  gmm table1
  gmm table2 [--ports 3] [--depth 16]
  gmm fig2
  gmm table3 [--points 1..9] [--cap-secs 60] [--parallel N]
             [--lp-basis dense|lu]

The LP engine factorizes the simplex basis; `--lp-basis` picks the
backend: `lu` (sparse LU + eta updates, default) or `dense` (explicit
inverse, reference).
";

/// Tiny flag parser: `--key value` and boolean `--key`.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Flags { args }
    }
    fn get(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }
    fn has(&self, key: &str) -> bool {
        self.args.iter().any(|a| a == key)
    }
    fn positional(&self, idx: usize) -> Option<&str> {
        self.args
            .iter()
            .filter(|a| !a.starts_with("--"))
            .nth(idx)
            .map(String::as_str)
    }
}

fn load_design(path: &str) -> Result<Design, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn load_board(path: &str) -> Result<Board, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn write_json<T: serde::Serialize>(path: &str, value: &T) -> Result<(), String> {
    let text = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
    std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))
}

fn lp_basis_from_flags(f: &Flags) -> Result<Option<gmm_ilp::BasisBackend>, String> {
    match f.get("--lp-basis") {
        None => Ok(None),
        Some("lu") | Some("sparse-lu") => Ok(Some(gmm_ilp::BasisBackend::SparseLu)),
        Some("dense") => Ok(Some(gmm_ilp::BasisBackend::Dense)),
        Some(other) => Err(format!("--lp-basis must be `dense` or `lu`, got `{other}`")),
    }
}

fn backend_from_flags(f: &Flags) -> Result<SolverBackend, String> {
    let mut backend = match f.get("--parallel") {
        Some(n) => SolverBackend::Parallel(ParallelOptions {
            threads: n.parse().unwrap_or(0),
            ..ParallelOptions::default()
        }),
        None => SolverBackend::Serial(MipOptions::default()),
    };
    if let Some(basis) = lp_basis_from_flags(f)? {
        backend.set_lp_basis(basis);
    }
    Ok(backend)
}

fn cmd_map(args: &[String]) -> Result<(), String> {
    let f = Flags::new(args);
    let design = load_design(f.get("--design").ok_or("--design required")?)?;
    let board = load_board(f.get("--board").ok_or("--board required")?)?;

    let mut opts = MapperOptions::new();
    opts.backend = backend_from_flags(&f)?;
    opts.overlap_aware = f.has("--overlap");
    if f.has("--ilp-detailed") {
        opts.detailed = DetailedStrategy::Ilp(DetailedIlpOptions::default());
    }
    let mapper = Mapper::new(opts);

    if f.has("--complete") {
        let t0 = Instant::now();
        let (assignment, stats) = mapper
            .map_complete(&design, &board)
            .map_err(|e| e.to_string())?;
        println!(
            "complete formulation: {} vars, {} constraints, {} nonzeros",
            stats.variables, stats.constraints, stats.nonzeros
        );
        println!("solved in {:?}", t0.elapsed());
        print_assignment(&design, &board, &assignment.type_of);
        return Ok(());
    }

    let t0 = Instant::now();
    let out = mapper.map(&design, &board).map_err(|e| e.to_string())?;
    println!(
        "mapped {} segments in {:?} (global {:?}, detailed {:?}, {} retries)",
        design.num_segments(),
        t0.elapsed(),
        out.stats.global_time,
        out.stats.detailed_time,
        out.stats.retries
    );
    print_assignment(&design, &board, &out.global.type_of);
    println!(
        "cost: latency {:.0}, pin-delay {:.0}, pin-io {:.0}",
        out.cost.latency, out.cost.pin_delay, out.cost.pin_io
    );
    println!(
        "fragments: {}, instances used: {}",
        out.detailed.fragments.len(),
        out.detailed.instances_used()
    );
    if let Some(path) = f.get("--out") {
        write_json(path, &out.detailed)?;
        println!("detailed mapping written to {path}");
    }
    Ok(())
}

fn print_assignment(design: &Design, board: &Board, type_of: &[gmm_arch::BankTypeId]) {
    let mut counts = vec![0usize; board.num_types()];
    for t in type_of {
        counts[t.0] += 1;
    }
    for (t, bank) in board.iter() {
        println!("  {:<24} <- {} segments", bank.name, counts[t.0]);
    }
    if design.num_segments() <= 24 {
        for (d, seg) in design.iter() {
            println!("    {} -> {}", seg, board.bank(type_of[d.0]).name);
        }
    }
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let f = Flags::new(args);
    let kind = f.positional(0).ok_or("gen requires design|board|kernel")?;
    match kind {
        "design" => {
            let segments = f
                .get("--segments")
                .map(|v| v.parse().map_err(|e| format!("--segments: {e}")))
                .transpose()?
                .unwrap_or(16);
            let seed = f
                .get("--seed")
                .map(|v| v.parse().map_err(|e| format!("--seed: {e}")))
                .transpose()?
                .unwrap_or(0xC0FFEE);
            let design = gmm_workloads::random_design(&RandomDesignSpec {
                segments,
                seed,
                ..RandomDesignSpec::default()
            });
            emit(&f, &design, "design")
        }
        "board" => {
            if let Some(point) = f.get("--table3-point") {
                let idx: usize = point.parse().map_err(|e| format!("--table3-point: {e}"))?;
                if !(1..=9).contains(&idx) {
                    return Err("--table3-point must be 1..9".into());
                }
                let board = table3_board(&TABLE3[idx - 1]);
                return emit(&f, &board, "board");
            }
            let device = f.get("--device").unwrap_or("XCV1000");
            let srams = f
                .get("--srams")
                .map(|v| v.parse().map_err(|e| format!("--srams: {e}")))
                .transpose()?
                .unwrap_or(4);
            let board = Board::prototyping(device, srams).map_err(|e| e.to_string())?;
            emit(&f, &board, "board")
        }
        "kernel" => {
            let name = f.positional(1).ok_or("kernel name required")?;
            let design = match name {
                "fir" => kernels::fir(16, 1024),
                "conv2d" => kernels::conv2d(128, 128, 3),
                "fft" => kernels::fft(1024),
                "matmul" => kernels::matmul(64, 8),
                "histogram" => kernels::histogram(128, 128, 256),
                other => return Err(format!("unknown kernel `{other}`")),
            };
            emit(&f, &design, "design")
        }
        other => Err(format!("unknown gen target `{other}`")),
    }
}

fn emit<T: serde::Serialize>(f: &Flags, value: &T, what: &str) -> Result<(), String> {
    match f.get("--out") {
        Some(path) => {
            write_json(path, value)?;
            println!("{what} written to {path}");
            Ok(())
        }
        None => {
            println!(
                "{}",
                serde_json::to_string_pretty(value).map_err(|e| e.to_string())?
            );
            Ok(())
        }
    }
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let f = Flags::new(args);
    let design = load_design(f.get("--design").ok_or("--design required")?)?;
    let board = load_board(f.get("--board").ok_or("--board required")?)?;
    let mapper = Mapper::new(MapperOptions::new());
    let out = mapper.map(&design, &board).map_err(|e| e.to_string())?;
    let trace = match f.get("--random") {
        Some(n) => Trace::random(
            &design,
            n.parse().map_err(|e| format!("--random: {e}"))?,
            42,
        ),
        None => Trace::from_profiles(&design),
    };
    let report =
        simulate_mapping(&design, &board, &out.detailed, &trace).map_err(|e| e.to_string())?;
    print!("{}", render_report(&design, &report));
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let f = Flags::new(args);
    let design = load_design(f.get("--design").ok_or("--design required")?)?;
    let board = load_board(f.get("--board").ok_or("--board required")?)?;
    let path = f.get("--mapping").ok_or("--mapping required")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mapping: gmm_core::DetailedMapping =
        serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let policy = gmm_core::ValidationPolicy {
        max_port_sharing: f
            .get("--max-sharing")
            .map(|v| v.parse().map_err(|e| format!("--max-sharing: {e}")))
            .transpose()?
            .unwrap_or(1),
    };
    let violations = gmm_core::validate_detailed_policy(&design, &board, &mapping, policy);
    let decode_errors = gmm_sim::check_adder_free(&mapping);
    if violations.is_empty() && decode_errors.is_empty() {
        println!(
            "OK: {} fragments, {} instances, adder-free decode",
            mapping.fragments.len(),
            mapping.instances_used()
        );
        Ok(())
    } else {
        for v in &violations {
            eprintln!("violation: {v:?}");
        }
        for (i, e) in &decode_errors {
            eprintln!("fragment {i}: {e}");
        }
        Err(format!(
            "{} violations, {} decode errors",
            violations.len(),
            decode_errors.len()
        ))
    }
}

fn cmd_export(args: &[String]) -> Result<(), String> {
    let f = Flags::new(args);
    let design = load_design(f.get("--design").ok_or("--design required")?)?;
    let board = load_board(f.get("--board").ok_or("--board required")?)?;
    let pre = gmm_core::PreTable::build(&design, &board);
    let matrix = gmm_core::CostMatrix::build(&design, &board, &pre);
    let weights = CostWeights::default();
    let model = if f.has("--complete") {
        gmm_core::complete::build_complete_model(&design, &board, &pre, &matrix, &weights, false)
            .map_err(|e| e.to_string())?
            .model
    } else {
        gmm_core::global::build_global_model(
            &design, &board, &pre, &matrix, &weights, false, &[],
        )
        .map_err(|e| e.to_string())?
        .model
    };
    let text = match f.get("--format").unwrap_or("mps") {
        "mps" => gmm_ilp::io::to_mps(&model),
        "lp" => gmm_ilp::io::to_lp(&model),
        other => return Err(format!("unknown format `{other}` (mps|lp)")),
    };
    match f.get("--out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
            println!(
                "wrote {} ({} vars, {} constraints)",
                path,
                model.num_vars(),
                model.num_constraints()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_table1() -> Result<(), String> {
    println!("Table 1: FPGA on-chip RAMs\n");
    println!(
        "{:<14} {:<10} {:>12} {:>8}  configurations",
        "Family", "RAM", "# banks", "bits"
    );
    let rows = [
        ("Xilinx Virtex", gmm_arch::Family::Virtex, gmm_arch::VIRTEX),
        ("Altera Flex10K", gmm_arch::Family::Flex10K, gmm_arch::FLEX10K),
        ("Altera Apex E", gmm_arch::Family::Apex20K, gmm_arch::APEX20K),
    ];
    for (label, family, devices) in rows {
        let min = devices.iter().map(|d| d.ram_blocks).min().unwrap();
        let max = devices.iter().map(|d| d.ram_blocks).max().unwrap();
        let configs: Vec<String> = family
            .configurations()
            .iter()
            .map(|c| c.to_string())
            .collect();
        println!(
            "{:<14} {:<10} {:>5} -> {:<4} {:>8}  {}",
            label,
            family.ram_name(),
            min,
            max,
            family.block_bits(),
            configs.join(", ")
        );
    }
    Ok(())
}

fn cmd_table2(args: &[String]) -> Result<(), String> {
    let f = Flags::new(args);
    let ports: u32 = f
        .get("--ports")
        .unwrap_or("3")
        .parse()
        .map_err(|e| format!("--ports: {e}"))?;
    let depth: u32 = f
        .get("--depth")
        .unwrap_or("16")
        .parse()
        .map_err(|e| format!("--depth: {e}"))?;
    println!("Table 2: allocation options of a {ports}-port {depth}-word bank\n");
    println!("{:<20} accepted-by-Figure-3", "words per port");
    for opt in enumerate_port_allocations(ports, depth) {
        let words: Vec<String> = opt.words.iter().map(u32::to_string).collect();
        println!(
            "{:<20} {}",
            words.join(", "),
            if opt.accepted { "yes" } else { "NO (rejected)" }
        );
    }
    Ok(())
}

fn cmd_fig2() -> Result<(), String> {
    use gmm_arch::{BankType, Placement, RamConfig};
    let bank = BankType::new(
        "fig2",
        12,
        3,
        vec![
            RamConfig::new(128, 1),
            RamConfig::new(64, 2),
            RamConfig::new(32, 4),
            RamConfig::new(16, 8),
        ],
        1,
        1,
        Placement::OnChip,
    )
    .map_err(|e| e.to_string())?;
    let e = gmm_core::preprocess::preprocess_pair(&bank, 55, 17);
    println!("Figure 2: a 55x17 data structure on a 3-port bank");
    println!("configurations: 128x1, 64x2, 32x4, 16x8\n");
    println!("alpha = {}   beta = {}", e.split.alpha, e.split.beta);
    println!(
        "full columns = {}, remainder width = {}",
        e.split.full_cols, e.split.rem_width
    );
    println!(
        "full rows = {}, remainder depth = {}\n",
        e.full_rows, e.rem_depth
    );
    println!("FP  (full instances)        = {:>3} ports", e.fp);
    println!("WP  (width-remainder col)   = {:>3} ports", e.wp);
    println!("DP  (depth-remainder row)   = {:>3} ports", e.dp);
    println!("WDP (corner)                = {:>3} ports", e.wdp);
    println!("CP  = {}", e.cp());
    println!("CW  = {}   CD = {}", e.cw, e.cd);
    Ok(())
}

fn cmd_table3(args: &[String]) -> Result<(), String> {
    let f = Flags::new(args);
    let cap = Duration::from_secs_f64(
        f.get("--cap-secs")
            .unwrap_or("60")
            .parse()
            .map_err(|e| format!("--cap-secs: {e}"))?,
    );
    let points: Vec<usize> = match f.get("--points") {
        Some(spec) => parse_points(spec)?,
        None => (1..=9).collect(),
    };
    let threads: usize = f
        .get("--parallel")
        .map(|v| v.parse().map_err(|e| format!("--parallel: {e}")))
        .transpose()?
        .unwrap_or(0);

    println!("Table 3: ILP execution times, complete vs global/detailed");
    println!("(time cap per solve: {cap:?}; '>' marks capped runs)\n");
    println!(
        "{:>5} {:>9} {:>7} {:>7} {:>8} | {:>12} {:>12} {:>8} | {:>10} {:>10}",
        "point",
        "#segs",
        "#banks",
        "#ports",
        "#configs",
        "complete(s)",
        "global(s)",
        "speedup",
        "paper-c(s)",
        "paper-g(s)"
    );

    for idx in points {
        let point = TABLE3[idx - 1];
        let design = table3_design(&point, 0xF00D);
        let board = table3_board(&point);

        let mip = MipOptions {
            time_limit: Some(cap),
            ..MipOptions::default()
        };
        let mut backend = if threads > 0 {
            SolverBackend::Parallel(ParallelOptions {
                threads,
                mip: mip.clone(),
            })
        } else {
            SolverBackend::Serial(mip)
        };
        if let Some(basis) = lp_basis_from_flags(&f)? {
            backend.set_lp_basis(basis);
        }
        let mut opts = MapperOptions::new();
        opts.backend = backend;
        let mapper = Mapper::new(opts);

        // Global/detailed (includes all pre-processing, as in the paper).
        let t0 = Instant::now();
        let two_phase = mapper.map(&design, &board);
        let global_time = t0.elapsed();

        // Complete.
        let t1 = Instant::now();
        let complete = mapper.map_complete(&design, &board);
        let complete_time = t1.elapsed();

        let complete_capped = complete_time >= cap;
        let gsecs = global_time.as_secs_f64();
        let csecs = complete_time.as_secs_f64();
        let speedup = csecs / gsecs.max(1e-9);
        let status = match (&two_phase, &complete) {
            (Ok(a), Ok((b, _))) => {
                let w = CostWeights::default();
                let ca = a.cost.weighted(&w);
                let cb = b.cost.weighted(&w);
                if (ca - cb).abs() < 1e-6 || complete_capped {
                    ""
                } else {
                    " COST-MISMATCH"
                }
            }
            (Err(e), _) => {
                // Global/detailed failing is a real problem worth flagging.
                println!("  global/detailed error: {e}");
                " GLOBAL-FAILED"
            }
            (Ok(_), Err(_)) if complete_capped => "", // cap marker suffices
            (Ok(_), Err(_)) => " (complete failed)",
        };
        println!(
            "{:>5} {:>9} {:>7} {:>7} {:>8} | {}{:>11.2} {:>12.2} {:>7.1}x | {:>10.1} {:>10.1}{}",
            point.index,
            point.segments,
            point.banks,
            point.ports,
            point.configs,
            if complete_capped { ">" } else { " " },
            csecs,
            gsecs,
            speedup,
            point.paper_complete_secs,
            point.paper_global_secs,
            status,
        );
    }
    println!("\npaper platform: CPLEX on a 248 MHz SUN Ultra-30; shapes, not");
    println!("absolute seconds, are expected to match (see EXPERIMENTS.md).");
    Ok(())
}

fn parse_points(spec: &str) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        if let Some((a, b)) = part.split_once("..") {
            let a: usize = a.parse().map_err(|e| format!("--points: {e}"))?;
            let b: usize = b.parse().map_err(|e| format!("--points: {e}"))?;
            out.extend(a..=b);
        } else {
            out.push(part.parse().map_err(|e| format!("--points: {e}"))?);
        }
    }
    if out.iter().any(|&p| !(1..=9).contains(&p)) {
        return Err("--points must be within 1..9".into());
    }
    Ok(out)
}
