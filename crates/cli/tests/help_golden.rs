//! Golden tests for `gmm <subcommand> --help`.
//!
//! Every subcommand must answer `--help` with exactly the text recorded
//! under `tests/golden/` — the CLI's documented surface is part of its
//! contract. On an intentional change, update the golden file to match.

use std::process::Command;

const SUBCOMMANDS: &[&str] = &[
    "solve", "map", "gen", "simulate", "validate", "export", "serve", "route", "batch",
    "arch-sweep", "bench", "check", "lint", "table1", "table2", "fig2", "table3",
];

fn run_help(cmd: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_gmm"))
        .args([cmd, "--help"])
        .output()
        .expect("run gmm");
    assert!(
        out.status.success(),
        "`gmm {cmd} --help` exited {:?} (help must succeed)",
        out.status.code()
    );
    assert!(out.stderr.is_empty(), "`gmm {cmd} --help` wrote to stderr");
    String::from_utf8(out.stdout).expect("help is utf-8")
}

#[test]
fn every_subcommand_answers_help_with_its_golden_text() {
    for cmd in SUBCOMMANDS {
        let stdout = run_help(cmd);
        // `map` is an alias of `solve` and shares its help text.
        let golden_name = if *cmd == "map" { "solve" } else { cmd };
        let path = format!(
            "{}/tests/golden/{golden_name}.txt",
            env!("CARGO_MANIFEST_DIR")
        );
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden file {path}: {e}"));
        assert_eq!(
            stdout, golden,
            "`gmm {cmd} --help` drifted from {path}; update the golden file if intentional"
        );
    }
}

#[test]
fn top_level_help_covers_every_subcommand_and_exit_code() {
    let out = Command::new(env!("CARGO_BIN_EXE_gmm"))
        .arg("--help")
        .output()
        .expect("run gmm");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for cmd in SUBCOMMANDS {
        assert!(text.contains(cmd), "top-level help does not mention `{cmd}`");
    }
    // The documented exit-code contract, including the dedicated
    // deadline/cancellation code.
    assert!(text.contains("5 deadline exceeded or cancelled"));
}

#[test]
fn unknown_subcommand_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_gmm"))
        .arg("frobnicate")
        .output()
        .expect("run gmm");
    assert_eq!(out.status.code(), Some(2));
}
