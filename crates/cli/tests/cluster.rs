//! End-to-end cluster test: three real `gmm serve` daemons behind an
//! in-process router, with one backend killed -9 mid-batch.
//!
//! The contract under test is the ISSUE's headline: every submitted job
//! reaches a terminal state, none are lost, and the router observes the
//! crash (its reconnects counter moves). The router and the client both
//! run in this process; the backends are the released binary, so the
//! wire protocol is exercised for real.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use gmm_cluster::{Router, RouterOptions, ShardMap};
use gmm_service::{instance_key, JobConfig, JobState, Session, SubmitSpec};
use gmm_workloads::{random_design, RandomDesignSpec};

/// Spawn `gmm serve` on an ephemeral port and parse the bound address
/// from its banner line.
fn spawn_backend() -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_gmm"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn gmm serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read serve banner");
    // "mapsrv listening on 127.0.0.1:PORT (N workers); ..."
    let addr = line
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
        .to_string();
    (child, addr)
}

fn spec(seed: u64) -> SubmitSpec {
    let design = random_design(&RandomDesignSpec {
        segments: 6,
        seed,
        ..RandomDesignSpec::default()
    });
    let board = gmm_arch::Board::prototyping("XCV300", 1).unwrap();
    SubmitSpec::new(design, board, JobConfig::default())
}

#[test]
fn killing_a_backend_mid_batch_loses_no_jobs() {
    let mut children = Vec::new();
    let mut backends = Vec::new();
    for _ in 0..3 {
        let (child, addr) = spawn_backend();
        children.push(child);
        backends.push(addr);
    }

    let router = Router::start("127.0.0.1:0", RouterOptions::new(backends.clone()))
        .expect("start router");
    let mut session = Session::connect(router.local_addr()).expect("connect to router");

    let specs: Vec<SubmitSpec> = (0..32).map(spec).collect();
    // Kill the backend that owns the first job's key, so the victim is
    // guaranteed to hold at least one job of ours.
    let ring = ShardMap::new(&backends, 0);
    let key = instance_key(&specs[0].design, &specs[0].board, &specs[0].config);
    let victim = backends
        .iter()
        .position(|b| b == ring.owner(key.0))
        .expect("owner is a configured backend");

    let receipts = session.submit_batch(specs).expect("submit 32 jobs");
    assert_eq!(receipts.len(), 32);
    children[victim].kill().expect("kill -9 the victim backend");

    let outcomes = session
        .wait_all(Duration::from_secs(300))
        .expect("all jobs reach a terminal state");
    assert_eq!(outcomes.len(), 32, "no job may be lost");
    for out in &outcomes {
        assert!(
            out.state.is_terminal(),
            "job {} ended non-terminal: {:?}",
            out.job,
            out.state
        );
        // Re-routed jobs must finish as real outcomes, not router-side
        // failures: the survivors can solve every instance.
        assert_eq!(
            out.state,
            JobState::Done,
            "job {} should re-route and solve, got {:?} ({})",
            out.job,
            out.state,
            out.error.as_deref().unwrap_or("no error")
        );
    }
    assert!(
        router.reconnects() >= 1,
        "the router must observe the backend loss"
    );

    drop(session);
    router.request_stop();
    for (i, mut child) in children.into_iter().enumerate() {
        if i != victim {
            let _ = child.kill();
        }
        let _ = child.wait();
    }
}
