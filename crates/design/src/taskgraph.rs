//! Task-graph description and scheduling (paper §3.2–3.3).
//!
//! The paper's design input is "a task graph description": scheduling
//! determines the life times of variables and data structures [7, 4],
//! and those lifetimes drive the conflict relation. This module provides
//! the missing front half of that flow: a dependence graph of tasks that
//! read and write data segments, an ASAP list scheduler assigning control
//! steps, and lifetime extraction (first producing step → last consuming
//! step) feeding straight into [`crate::DesignBuilder`].

use crate::lifetime::Lifetime;
use crate::segment::SegmentId;
use serde::{Deserialize, Serialize};

/// Handle to a task in a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub usize);

/// One node of the task graph: an operation consuming and producing data
/// segments over `duration` control steps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    pub name: String,
    /// Control steps the task occupies (≥ 1).
    pub duration: u32,
    /// Segments read.
    pub reads: Vec<SegmentId>,
    /// Segments written.
    pub writes: Vec<SegmentId>,
    /// Tasks that must complete first.
    pub deps: Vec<TaskId>,
}

/// A dependence graph of tasks over a design's segments.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    tasks: Vec<Task>,
}

/// Errors raised building or scheduling a task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskGraphError {
    /// A task references a task id that does not exist (or itself).
    BadDependency { task: usize, dep: usize },
    /// Task durations must be at least one control step.
    ZeroDuration { task: usize },
    /// The dependence relation contains a cycle.
    Cycle,
    /// A segment is read by a task scheduled before any task writes it.
    ReadBeforeWrite { task: usize, segment: SegmentId },
}

impl std::fmt::Display for TaskGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskGraphError::BadDependency { task, dep } => {
                write!(f, "task {task} depends on invalid task {dep}")
            }
            TaskGraphError::ZeroDuration { task } => {
                write!(f, "task {task} has zero duration")
            }
            TaskGraphError::Cycle => write!(f, "task graph has a dependence cycle"),
            TaskGraphError::ReadBeforeWrite { task, segment } => write!(
                f,
                "task {task} reads segment {} before any writer runs",
                segment.0
            ),
        }
    }
}

impl std::error::Error for TaskGraphError {}

/// The result of scheduling: per-task start/end steps and per-segment
/// lifetimes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// `[start, end)` control steps per task, ASAP order.
    pub task_spans: Vec<(u32, u32)>,
    /// Total schedule length in control steps.
    pub makespan: u32,
}

impl TaskGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task; dependencies must reference earlier-added tasks (this
    /// keeps the graph acyclic by construction, mirroring how behavioural
    /// descriptions are lowered in topological order).
    pub fn task(
        &mut self,
        name: impl Into<String>,
        duration: u32,
        reads: Vec<SegmentId>,
        writes: Vec<SegmentId>,
        deps: Vec<TaskId>,
    ) -> Result<TaskId, TaskGraphError> {
        let id = self.tasks.len();
        if duration == 0 {
            return Err(TaskGraphError::ZeroDuration { task: id });
        }
        for d in &deps {
            if d.0 >= id {
                return Err(TaskGraphError::BadDependency { task: id, dep: d.0 });
            }
        }
        self.tasks.push(Task {
            name: name.into(),
            duration,
            reads,
            writes,
            deps,
        });
        Ok(TaskId(id))
    }

    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    pub fn get(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// ASAP schedule: every task starts at the maximum finish time of its
    /// dependencies (resource-unconstrained list schedule, the classic
    /// first step of high-level synthesis [4, 7]).
    pub fn schedule_asap(&self) -> Result<Schedule, TaskGraphError> {
        let n = self.tasks.len();
        let mut spans: Vec<(u32, u32)> = Vec::with_capacity(n);
        let mut makespan = 0u32;
        for (i, t) in self.tasks.iter().enumerate() {
            let mut start = 0u32;
            for d in &t.deps {
                debug_assert!(d.0 < i, "construction keeps deps backward");
                start = start.max(spans[d.0].1);
            }
            let end = start + t.duration;
            spans.push((start, end));
            makespan = makespan.max(end);
        }
        Ok(Schedule {
            task_spans: spans,
            makespan,
        })
    }

    /// Derive per-segment lifetimes from a schedule: a segment is live
    /// from the start of its first writer to the end of its last reader
    /// (or last writer, if it is never read — an output).
    ///
    /// `num_segments` sizes the result; segments no task touches get the
    /// whole-schedule lifetime (conservative).
    pub fn lifetimes(
        &self,
        schedule: &Schedule,
        num_segments: usize,
    ) -> Result<Vec<Lifetime>, TaskGraphError> {
        let mut first_write: Vec<Option<u32>> = vec![None; num_segments];
        let mut last_touch: Vec<Option<u32>> = vec![None; num_segments];
        for (i, t) in self.tasks.iter().enumerate() {
            let (start, end) = schedule.task_spans[i];
            for s in &t.writes {
                let fw = &mut first_write[s.0];
                *fw = Some(fw.map_or(start, |v| v.min(start)));
                let lt = &mut last_touch[s.0];
                *lt = Some(lt.map_or(end, |v| v.max(end)));
            }
        }
        // Readers extend the lifetime. A segment nobody writes is a
        // primary input, live from step 0; a read that completes before
        // the first write of a *written* segment is a use-before-def
        // error.
        for (i, t) in self.tasks.iter().enumerate() {
            let (_start, end) = schedule.task_spans[i];
            for s in &t.reads {
                match first_write[s.0] {
                    Some(fw) if end <= fw => {
                        return Err(TaskGraphError::ReadBeforeWrite {
                            task: i,
                            segment: *s,
                        });
                    }
                    Some(_) => {
                        let lt = &mut last_touch[s.0];
                        *lt = Some(lt.map_or(end, |v| v.max(end)));
                    }
                    None => {
                        // Primary input: live from the schedule start.
                        first_write[s.0] = Some(0);
                        let lt = &mut last_touch[s.0];
                        *lt = Some(lt.map_or(end, |v| v.max(end)));
                    }
                }
            }
        }
        let whole = Lifetime::new(0, schedule.makespan.max(1)).expect("nonempty");
        Ok((0..num_segments)
            .map(|s| match (first_write[s], last_touch[s]) {
                (Some(fw), Some(lt)) if lt > fw => Lifetime::new(fw, lt).expect("lt > fw"),
                _ => whole,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(i: usize) -> SegmentId {
        SegmentId(i)
    }

    /// input -> [load] -> buf -> [compute] -> out ; scratch only inside
    /// compute.
    fn pipeline_graph() -> TaskGraph {
        let mut g = TaskGraph::new();
        let load = g
            .task("load", 2, vec![seg(0)], vec![seg(1)], vec![])
            .unwrap();
        let compute = g
            .task("compute", 3, vec![seg(1)], vec![seg(2), seg(3)], vec![load])
            .unwrap();
        let _store = g
            .task("store", 1, vec![seg(2)], vec![seg(4)], vec![compute])
            .unwrap();
        g
    }

    #[test]
    fn asap_schedule_chains() {
        let g = pipeline_graph();
        let s = g.schedule_asap().unwrap();
        assert_eq!(s.task_spans, vec![(0, 2), (2, 5), (5, 6)]);
        assert_eq!(s.makespan, 6);
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        let mut g = TaskGraph::new();
        g.task("a", 4, vec![], vec![seg(0)], vec![]).unwrap();
        g.task("b", 2, vec![], vec![seg(1)], vec![]).unwrap();
        let s = g.schedule_asap().unwrap();
        assert_eq!(s.task_spans[0].0, 0);
        assert_eq!(s.task_spans[1].0, 0);
        assert_eq!(s.makespan, 4);
    }

    #[test]
    fn lifetimes_from_schedule() {
        let g = pipeline_graph();
        let s = g.schedule_asap().unwrap();
        let lts = g.lifetimes(&s, 5).unwrap();
        // seg1 (buf): written by load [0,2), read by compute [2,5).
        assert_eq!(lts[1], Lifetime::new(0, 5).unwrap());
        // seg3 (scratch): written by compute, never read -> [2,5).
        assert_eq!(lts[3], Lifetime::new(2, 5).unwrap());
        // seg2: written by compute [2,5), read by store [5,6).
        assert_eq!(lts[2], Lifetime::new(2, 6).unwrap());
        // seg4 (out): written by store only.
        assert_eq!(lts[4], Lifetime::new(5, 6).unwrap());
        // seg0 (primary input): live from step 0 to its last read (end of
        // `load`).
        assert_eq!(lts[0], Lifetime::new(0, 2).unwrap());
    }

    #[test]
    fn scratch_and_output_can_overlap() {
        // seg3 dies at step 5; seg4 born at step 5: storage-compatible.
        let g = pipeline_graph();
        let s = g.schedule_asap().unwrap();
        let lts = g.lifetimes(&s, 5).unwrap();
        assert!(!lts[3].overlaps(&lts[4]));
    }

    #[test]
    fn forward_deps_rejected() {
        let mut g = TaskGraph::new();
        let err = g.task("x", 1, vec![], vec![], vec![TaskId(0)]);
        assert!(matches!(err, Err(TaskGraphError::BadDependency { .. })));
    }

    #[test]
    fn zero_duration_rejected() {
        let mut g = TaskGraph::new();
        assert!(matches!(
            g.task("x", 0, vec![], vec![], vec![]),
            Err(TaskGraphError::ZeroDuration { .. })
        ));
    }

    #[test]
    fn read_before_write_detected() {
        let mut g = TaskGraph::new();
        // Reader and writer are independent, both start at 0; the reader
        // finishes before the writer has produced anything useful only if
        // end <= first_write -- here reader [0,1), writer [0,2): end 1 >
        // fw 0, so OK. Make the reader strictly precede the writer:
        g.task("reader", 1, vec![seg(0)], vec![], vec![]).unwrap();
        let r = g.task("writer", 1, vec![], vec![seg(0)], vec![TaskId(0)]);
        let w = r.unwrap();
        let _ = w;
        let s = g.schedule_asap().unwrap();
        let err = g.lifetimes(&s, 1);
        assert!(matches!(
            err,
            Err(TaskGraphError::ReadBeforeWrite { task: 0, .. })
        ));
    }

    #[test]
    fn untouched_segments_get_whole_span() {
        let mut g = TaskGraph::new();
        g.task("a", 3, vec![], vec![seg(0)], vec![]).unwrap();
        let s = g.schedule_asap().unwrap();
        let lts = g.lifetimes(&s, 2).unwrap();
        assert_eq!(lts[1], Lifetime::new(0, 3).unwrap());
    }

    #[test]
    fn serde_roundtrip() {
        let g = pipeline_graph();
        let json = serde_json::to_string(&g).unwrap();
        let back: TaskGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
