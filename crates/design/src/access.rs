//! Memory-access footprints (paper §3.2: "a footprint analysis of the
//! memory accesses could tremendously help in guiding the mapping").

use serde::{Deserialize, Serialize};

/// Read/write counts of one segment over the application's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessProfile {
    pub reads: u64,
    pub writes: u64,
}

impl AccessProfile {
    pub const fn new(reads: u64, writes: u64) -> Self {
        AccessProfile { reads, writes }
    }

    /// The paper's default assumption (§4.1.3): the number of reads equals
    /// the number of writes and both scale with the segment depth.
    pub fn paper_default(depth: u32) -> Self {
        AccessProfile {
            reads: depth as u64,
            writes: depth as u64,
        }
    }

    /// Total accesses.
    #[inline]
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Weighted latency of this profile on a bank with the given read and
    /// write latencies.
    #[inline]
    pub fn latency_cycles(&self, read_latency: u32, write_latency: u32) -> u64 {
        self.reads * read_latency as u64 + self.writes * write_latency as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_symmetric() {
        let p = AccessProfile::paper_default(55);
        assert_eq!(p.reads, 55);
        assert_eq!(p.writes, 55);
        assert_eq!(p.total(), 110);
    }

    #[test]
    fn latency_weighting() {
        let p = AccessProfile::new(10, 4);
        assert_eq!(p.latency_cycles(2, 3), 32);
    }
}
