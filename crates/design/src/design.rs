//! The [`Design`] container: everything the memory mapper needs to know
//! about an application.

use crate::access::AccessProfile;
use crate::conflict::ConflictSet;
use crate::lifetime::{live_sets_at_events, Lifetime};
use crate::segment::{DataSegment, SegmentError, SegmentId};
use serde::{Deserialize, Serialize};

/// A complete application-side mapping input: segments, access profiles,
/// optional lifetimes, and the conflict relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Design {
    pub name: String,
    segments: Vec<DataSegment>,
    profiles: Vec<AccessProfile>,
    lifetimes: Option<Vec<Lifetime>>,
    conflicts: ConflictSet,
}

/// Errors raised while assembling a design.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignError {
    Segment(SegmentError),
    /// A design must contain at least one segment.
    Empty,
    /// Lifetime list length must match the segment count.
    LifetimeArity { segments: usize, lifetimes: usize },
}

impl std::fmt::Display for DesignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignError::Segment(e) => write!(f, "invalid segment: {e}"),
            DesignError::Empty => write!(f, "design has no segments"),
            DesignError::LifetimeArity { segments, lifetimes } => write!(
                f,
                "{lifetimes} lifetimes supplied for {segments} segments"
            ),
        }
    }
}

impl std::error::Error for DesignError {}

impl From<SegmentError> for DesignError {
    fn from(e: SegmentError) -> Self {
        DesignError::Segment(e)
    }
}

impl Design {
    /// The design's name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    #[inline]
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    #[inline]
    pub fn segment(&self, id: SegmentId) -> &DataSegment {
        &self.segments[id.0]
    }

    #[inline]
    pub fn profile(&self, id: SegmentId) -> AccessProfile {
        self.profiles[id.0]
    }

    pub fn segments(&self) -> &[DataSegment] {
        &self.segments
    }

    /// Iterate `(id, segment)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SegmentId, &DataSegment)> {
        self.segments
            .iter()
            .enumerate()
            .map(|(i, s)| (SegmentId(i), s))
    }

    pub fn conflicts(&self) -> &ConflictSet {
        &self.conflicts
    }

    pub fn lifetimes(&self) -> Option<&[Lifetime]> {
        self.lifetimes.as_deref()
    }

    /// Total storage demand in bits.
    pub fn total_bits(&self) -> u64 {
        self.segments.iter().map(DataSegment::bits).sum()
    }

    /// Maximal sets of simultaneously-live segments. With lifetimes these
    /// are the interval-graph cliques; without, the single set of all
    /// segments (everything conflicts).
    pub fn concurrency_cliques(&self) -> Vec<Vec<SegmentId>> {
        match &self.lifetimes {
            Some(lts) => live_sets_at_events(lts)
                .into_iter()
                .map(|set| set.into_iter().map(SegmentId).collect())
                .collect(),
            None => vec![(0..self.segments.len()).map(SegmentId).collect()],
        }
    }

    /// Find a segment by name.
    pub fn find(&self, name: &str) -> Option<SegmentId> {
        self.segments
            .iter()
            .position(|s| s.name == name)
            .map(SegmentId)
    }
}

/// Builder for [`Design`].
#[derive(Debug, Default)]
pub struct DesignBuilder {
    name: String,
    segments: Vec<DataSegment>,
    profiles: Vec<Option<AccessProfile>>,
    lifetimes: Vec<Option<Lifetime>>,
    explicit_conflicts: Vec<(SegmentId, SegmentId)>,
    use_explicit_conflicts: bool,
}

impl DesignBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        DesignBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Add a segment; returns its id.
    pub fn segment(
        &mut self,
        name: impl Into<String>,
        depth: u32,
        width: u32,
    ) -> Result<SegmentId, DesignError> {
        let seg = DataSegment::new(name, depth, width)?;
        self.segments.push(seg);
        self.profiles.push(None);
        self.lifetimes.push(None);
        Ok(SegmentId(self.segments.len() - 1))
    }

    /// Attach an access profile (defaults to the paper's depth-based one).
    pub fn profile(&mut self, id: SegmentId, profile: AccessProfile) -> &mut Self {
        self.profiles[id.0] = Some(profile);
        self
    }

    /// Attach a lifetime interval.
    pub fn lifetime(&mut self, id: SegmentId, lifetime: Lifetime) -> &mut Self {
        self.lifetimes[id.0] = Some(lifetime);
        self
    }

    /// Declare an explicit conflict pair; switches the design from the
    /// all-conflict default to explicit-pair mode.
    pub fn conflict(&mut self, a: SegmentId, b: SegmentId) -> &mut Self {
        self.explicit_conflicts.push((a, b));
        self.use_explicit_conflicts = true;
        self
    }

    /// Finalize. Conflict derivation:
    /// * lifetimes on **all** segments → conflicts = lifetime overlaps
    ///   united with any explicit pairs;
    /// * explicit pairs only → exactly those pairs conflict;
    /// * neither → every pair conflicts (safe default).
    pub fn build(self) -> Result<Design, DesignError> {
        if self.segments.is_empty() {
            return Err(DesignError::Empty);
        }
        let n = self.segments.len();
        let profiles: Vec<AccessProfile> = self
            .profiles
            .iter()
            .enumerate()
            .map(|(i, p)| p.unwrap_or_else(|| AccessProfile::paper_default(self.segments[i].depth)))
            .collect();

        let have_all_lifetimes = self.lifetimes.iter().all(Option::is_some);
        let have_any_lifetime = self.lifetimes.iter().any(Option::is_some);
        if have_any_lifetime && !have_all_lifetimes {
            return Err(DesignError::LifetimeArity {
                segments: n,
                lifetimes: self.lifetimes.iter().filter(|l| l.is_some()).count(),
            });
        }

        let lifetimes: Option<Vec<Lifetime>> = if have_all_lifetimes {
            Some(self.lifetimes.iter().map(|l| l.unwrap()).collect())
        } else {
            None
        };

        let conflicts = match (&lifetimes, self.use_explicit_conflicts) {
            (Some(lts), _) => {
                let mut c = ConflictSet::from_lifetimes(lts);
                for (a, b) in &self.explicit_conflicts {
                    c.insert(*a, *b);
                }
                c
            }
            (None, true) => ConflictSet::from_pairs(self.explicit_conflicts),
            (None, false) => ConflictSet::AllConflict,
        };

        Ok(Design {
            name: self.name,
            segments: self.segments,
            profiles,
            lifetimes,
            conflicts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_segment_builder() -> (DesignBuilder, SegmentId, SegmentId) {
        let mut b = DesignBuilder::new("t");
        let a = b.segment("a", 100, 8).unwrap();
        let c = b.segment("b", 50, 16).unwrap();
        (b, a, c)
    }

    #[test]
    fn default_profiles_follow_paper() {
        let (b, a, _) = two_segment_builder();
        let d = b.build().unwrap();
        assert_eq!(d.profile(a).reads, 100);
        assert_eq!(d.profile(a).writes, 100);
        assert_eq!(d.total_bits(), 100 * 8 + 50 * 16);
    }

    #[test]
    fn default_conflicts_are_all() {
        let (b, a, c) = two_segment_builder();
        let d = b.build().unwrap();
        assert!(d.conflicts().conflicts(a, c));
        assert_eq!(d.concurrency_cliques(), vec![vec![a, c]]);
    }

    #[test]
    fn lifetimes_derive_conflicts() {
        let (mut b, a, c) = two_segment_builder();
        b.lifetime(a, Lifetime::new(0, 5).unwrap());
        b.lifetime(c, Lifetime::new(5, 9).unwrap());
        let d = b.build().unwrap();
        assert!(!d.conflicts().conflicts(a, c));
        assert_eq!(d.concurrency_cliques().len(), 2);
    }

    #[test]
    fn partial_lifetimes_rejected() {
        let (mut b, a, _) = two_segment_builder();
        b.lifetime(a, Lifetime::new(0, 5).unwrap());
        assert!(matches!(
            b.build(),
            Err(DesignError::LifetimeArity { .. })
        ));
    }

    #[test]
    fn explicit_conflicts_only() {
        let (mut b, a, c) = two_segment_builder();
        let e = b.segment("c", 10, 4).unwrap();
        b.conflict(a, c);
        let d = b.build().unwrap();
        assert!(d.conflicts().conflicts(a, c));
        assert!(!d.conflicts().conflicts(a, e));
    }

    #[test]
    fn empty_design_rejected() {
        assert!(matches!(
            DesignBuilder::new("x").build(),
            Err(DesignError::Empty)
        ));
    }

    #[test]
    fn find_by_name() {
        let (b, _, c) = two_segment_builder();
        let d = b.build().unwrap();
        assert_eq!(d.find("b"), Some(c));
        assert_eq!(d.find("zzz"), None);
    }

    #[test]
    fn serde_roundtrip() {
        let (b, _, _) = two_segment_builder();
        let d = b.build().unwrap();
        let json = serde_json::to_string(&d).unwrap();
        let back: Design = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
