//! Logical data segments (the paper's "data structures" `DS_d`).

use serde::{Deserialize, Serialize};

/// Index of a segment within a [`crate::design::Design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SegmentId(pub usize);

/// A logical data structure to be mapped: `D_d` words of `W_d` bits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataSegment {
    pub name: String,
    /// Number of words (`D_d`).
    pub depth: u32,
    /// Bits per word (`W_d`).
    pub width: u32,
}

/// Errors raised validating a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    ZeroDimension { name: String },
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::ZeroDimension { name } => {
                write!(f, "segment `{name}` has a zero dimension")
            }
        }
    }
}

impl std::error::Error for SegmentError {}

impl DataSegment {
    pub fn new(name: impl Into<String>, depth: u32, width: u32) -> Result<Self, SegmentError> {
        let name = name.into();
        if depth == 0 || width == 0 {
            return Err(SegmentError::ZeroDimension { name });
        }
        Ok(DataSegment { name, depth, width })
    }

    /// Total storage footprint in bits.
    #[inline]
    pub fn bits(&self) -> u64 {
        self.depth as u64 * self.width as u64
    }
}

impl std::fmt::Display for DataSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({}x{})", self.name, self.depth, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_bits() {
        let s = DataSegment::new("coeffs", 55, 17).unwrap();
        assert_eq!(s.bits(), 935);
        assert_eq!(s.to_string(), "coeffs (55x17)");
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(DataSegment::new("a", 0, 4).is_err());
        assert!(DataSegment::new("b", 4, 0).is_err());
    }
}
