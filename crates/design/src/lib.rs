//! # gmm-design — application-side model for memory mapping
//!
//! The design-side input of the mapping problem (paper §3.2–3.3): logical
//! **data segments** (`D_d x W_d`), **access profiles** (read/write
//! footprints), scheduler-derived **lifetimes**, and the **conflict
//! relation** telling the mapper which segments may never share storage.
//!
//! ```
//! use gmm_design::{DesignBuilder, Lifetime};
//!
//! let mut b = DesignBuilder::new("fir16");
//! let coeffs = b.segment("coeffs", 16, 12).unwrap();
//! let window = b.segment("window", 16, 12).unwrap();
//! b.lifetime(coeffs, Lifetime::new(0, 100).unwrap());
//! b.lifetime(window, Lifetime::new(0, 100).unwrap());
//! let design = b.build().unwrap();
//! assert!(design.conflicts().conflicts(coeffs, window));
//! ```

pub mod access;
pub mod conflict;
pub mod design;
pub mod lifetime;
pub mod segment;
pub mod taskgraph;

pub use access::AccessProfile;
pub use conflict::ConflictSet;
pub use design::{Design, DesignBuilder, DesignError};
pub use lifetime::{live_sets_at_events, Lifetime};
pub use segment::{DataSegment, SegmentError, SegmentId};
pub use taskgraph::{Schedule, Task, TaskGraph, TaskGraphError, TaskId};
