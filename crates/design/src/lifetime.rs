//! Segment lifetimes derived from scheduling (paper §3.3).
//!
//! Scheduling determines life times of variables and data structures
//! [7, 4]; segments whose lifetimes do not overlap may share storage.
//! Lifetimes are half-open control-step intervals `[start, end)`.

use serde::{Deserialize, Serialize};

/// Half-open interval of control steps during which a segment is live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lifetime {
    pub start: u32,
    /// Exclusive end; must satisfy `end > start`.
    pub end: u32,
}

impl Lifetime {
    pub fn new(start: u32, end: u32) -> Option<Self> {
        if end > start {
            Some(Lifetime { start, end })
        } else {
            None
        }
    }

    /// Whether two lifetimes overlap (half-open semantics: `[0,5)` and
    /// `[5,9)` do **not** overlap).
    #[inline]
    pub fn overlaps(&self, other: &Lifetime) -> bool {
        self.start < other.end && other.start < self.end
    }

    #[inline]
    pub fn duration(&self) -> u32 {
        self.end - self.start
    }
}

/// Sweep a set of lifetimes and return, for each event point where the
/// live set changes, the indices live at that point. For interval graphs
/// these sets are exactly the maximal cliques of the conflict graph, which
/// is what capacity constraints need.
pub fn live_sets_at_events(lifetimes: &[Lifetime]) -> Vec<Vec<usize>> {
    let mut events: Vec<u32> = lifetimes
        .iter()
        .flat_map(|l| [l.start, l.end])
        .collect();
    events.sort_unstable();
    events.dedup();
    let mut out: Vec<Vec<usize>> = Vec::new();
    for &t in &events {
        let live: Vec<usize> = lifetimes
            .iter()
            .enumerate()
            .filter(|(_, l)| l.start <= t && t < l.end)
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            continue;
        }
        // Keep only maximal sets (drop subsets of the previous event).
        if let Some(prev) = out.last() {
            if live.iter().all(|i| prev.contains(i)) {
                continue;
            }
            if prev.iter().all(|i| live.contains(i)) {
                out.pop();
            }
        }
        out.push(live);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_semantics() {
        let a = Lifetime::new(0, 5).unwrap();
        let b = Lifetime::new(5, 9).unwrap();
        let c = Lifetime::new(4, 6).unwrap();
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn empty_interval_rejected() {
        assert!(Lifetime::new(3, 3).is_none());
        assert!(Lifetime::new(5, 2).is_none());
    }

    #[test]
    fn live_sets_simple_chain() {
        // [0,10), [2,4), [6,8): cliques {0,1} and {0,2}.
        let lts = vec![
            Lifetime::new(0, 10).unwrap(),
            Lifetime::new(2, 4).unwrap(),
            Lifetime::new(6, 8).unwrap(),
        ];
        let sets = live_sets_at_events(&lts);
        assert!(sets.contains(&vec![0, 1]));
        assert!(sets.contains(&vec![0, 2]));
        // No set should contain both 1 and 2.
        assert!(!sets.iter().any(|s| s.contains(&1) && s.contains(&2)));
    }

    #[test]
    fn disjoint_lifetimes_are_singletons() {
        let lts = vec![Lifetime::new(0, 2).unwrap(), Lifetime::new(2, 4).unwrap()];
        let sets = live_sets_at_events(&lts);
        assert_eq!(sets, vec![vec![0], vec![1]]);
    }

    #[test]
    fn identical_lifetimes_form_one_clique() {
        let lts = vec![Lifetime::new(1, 5).unwrap(); 3];
        let sets = live_sets_at_events(&lts);
        assert_eq!(sets, vec![vec![0, 1, 2]]);
    }
}
