//! Conflict description (paper §3.3): which segment pairs may not share
//! storage space.

use crate::lifetime::Lifetime;
use crate::segment::SegmentId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The conflict relation over segments.
///
/// The paper's input is a set of conflicting pairs; absence of lifetime
/// information must be treated conservatively, so the default is
/// [`ConflictSet::AllConflict`] (no storage sharing anywhere).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[derive(Default)]
pub enum ConflictSet {
    /// Every pair of segments conflicts (the safe default).
    #[default]
    AllConflict,
    /// Exactly the listed pairs conflict; all other pairs may overlap in
    /// storage. Pairs are stored normalized with `a < b`.
    Pairs(BTreeSet<(SegmentId, SegmentId)>),
}


impl ConflictSet {
    /// Build from explicit pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (SegmentId, SegmentId)>) -> Self {
        let set = pairs
            .into_iter()
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        ConflictSet::Pairs(set)
    }

    /// Derive conflicts from lifetimes: overlapping lifetimes conflict.
    pub fn from_lifetimes(lifetimes: &[Lifetime]) -> Self {
        let mut set = BTreeSet::new();
        for i in 0..lifetimes.len() {
            for j in i + 1..lifetimes.len() {
                if lifetimes[i].overlaps(&lifetimes[j]) {
                    set.insert((SegmentId(i), SegmentId(j)));
                }
            }
        }
        ConflictSet::Pairs(set)
    }

    /// Whether segments `a` and `b` conflict (cannot share storage).
    pub fn conflicts(&self, a: SegmentId, b: SegmentId) -> bool {
        if a == b {
            return true; // a segment always "conflicts" with itself
        }
        match self {
            ConflictSet::AllConflict => true,
            ConflictSet::Pairs(set) => {
                let key = if a < b { (a, b) } else { (b, a) };
                set.contains(&key)
            }
        }
    }

    /// Number of explicit pairs (`Q` in the paper); `None` for the
    /// all-conflict default.
    pub fn num_pairs(&self) -> Option<usize> {
        match self {
            ConflictSet::AllConflict => None,
            ConflictSet::Pairs(s) => Some(s.len()),
        }
    }

    /// Add one conflicting pair (no-op on `AllConflict`).
    pub fn insert(&mut self, a: SegmentId, b: SegmentId) {
        if a == b {
            return;
        }
        if let ConflictSet::Pairs(set) = self {
            set.insert(if a < b { (a, b) } else { (b, a) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_conflict_default() {
        let c = ConflictSet::default();
        assert!(c.conflicts(SegmentId(0), SegmentId(1)));
        assert_eq!(c.num_pairs(), None);
    }

    #[test]
    fn pairs_are_normalized() {
        let c = ConflictSet::from_pairs([(SegmentId(3), SegmentId(1))]);
        assert!(c.conflicts(SegmentId(1), SegmentId(3)));
        assert!(c.conflicts(SegmentId(3), SegmentId(1)));
        assert!(!c.conflicts(SegmentId(0), SegmentId(1)));
        assert_eq!(c.num_pairs(), Some(1));
    }

    #[test]
    fn self_pairs_dropped_but_self_conflicts() {
        let c = ConflictSet::from_pairs([(SegmentId(2), SegmentId(2))]);
        assert_eq!(c.num_pairs(), Some(0));
        assert!(c.conflicts(SegmentId(2), SegmentId(2)));
    }

    #[test]
    fn lifetime_derivation() {
        let lts = vec![
            Lifetime::new(0, 5).unwrap(),
            Lifetime::new(3, 7).unwrap(),
            Lifetime::new(6, 9).unwrap(),
        ];
        let c = ConflictSet::from_lifetimes(&lts);
        assert!(c.conflicts(SegmentId(0), SegmentId(1)));
        assert!(c.conflicts(SegmentId(1), SegmentId(2)));
        assert!(!c.conflicts(SegmentId(0), SegmentId(2)));
    }

    #[test]
    fn insert_ignores_all_conflict() {
        let mut c = ConflictSet::AllConflict;
        c.insert(SegmentId(0), SegmentId(1));
        assert_eq!(c.num_pairs(), None);
        let mut p = ConflictSet::from_pairs([]);
        p.insert(SegmentId(1), SegmentId(0));
        assert_eq!(p.num_pairs(), Some(1));
    }
}
