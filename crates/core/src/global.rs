//! Global memory mapping (paper §4.1): the small ILP over `Z_dt` alone.
//!
//! Constraints (§4.1.2):
//! * **uniqueness** — every data structure lands on exactly one bank type;
//! * **ports** — `Σ_d Z_dt · CP_dt ≤ P_t · I_t` per type;
//! * **capacity** — `Σ_d Z_dt · CW_dt · CD_dt ≤ I_t · W_t[1] · D_t[1]` per
//!   type; when lifetimes are known the constraint is "slightly modified
//!   to allow overlapping" (§4.1.2 note): it is posted once per maximal
//!   set of simultaneously-live segments instead of once globally.
//!
//! Objective (§4.1.3): weighted latency + pin-delay + pin-I/O cost.

use crate::cost::{assignment_cost, CostMatrix, CostWeights};
use crate::preprocess::PreTable;
use gmm_arch::{BankTypeId, Board};
use gmm_design::{Design, SegmentId};
use gmm_ilp::branch::{solve_mip, MipOptions, MipResult};
use gmm_ilp::control::SolveControl;
use gmm_ilp::cuts::{solve_mip_with_cuts, CutOptions};
use gmm_ilp::error::{IlpError, MipStatus, StopReason};
use gmm_ilp::model::{LinExpr, Model, Objective, Sense, VarId};
use gmm_ilp::parallel::{solve_mip_parallel, ParallelOptions};

use crate::mapping::GlobalAssignment;

/// Which MIP engine runs the formulation.
#[derive(Debug, Clone)]
pub enum SolverBackend {
    /// Serial best-bound branch-and-bound.
    Serial(MipOptions),
    /// Serial branch-and-bound after root cutting planes.
    SerialWithCuts(MipOptions, CutOptions),
    /// Work-stealing parallel branch-and-bound.
    Parallel(ParallelOptions),
}

impl Default for SolverBackend {
    fn default() -> Self {
        SolverBackend::Serial(MipOptions::default())
    }
}

impl SolverBackend {
    /// Dispatch a model to the configured engine.
    pub fn solve(&self, model: &Model) -> Result<MipResult, IlpError> {
        match self {
            SolverBackend::Serial(opts) => solve_mip(model, opts),
            SolverBackend::SerialWithCuts(opts, cuts) => solve_mip_with_cuts(model, opts, cuts),
            SolverBackend::Parallel(opts) => solve_mip_parallel(model, opts),
        }
    }

    /// Select the simplex basis-factorization backend on whichever engine
    /// is configured (CLI `--lp-basis` plumbing).
    pub fn set_lp_basis(&mut self, basis: gmm_ilp::BasisBackend) {
        match self {
            SolverBackend::Serial(opts) | SolverBackend::SerialWithCuts(opts, _) => {
                opts.simplex.basis = basis;
            }
            SolverBackend::Parallel(popts) => popts.mip.simplex.basis = basis,
        }
    }

    /// The configured basis-factorization backend.
    pub fn lp_basis(&self) -> gmm_ilp::BasisBackend {
        match self {
            SolverBackend::Serial(opts) | SolverBackend::SerialWithCuts(opts, _) => {
                opts.simplex.basis
            }
            SolverBackend::Parallel(popts) => popts.mip.simplex.basis,
        }
    }

    /// Select the simplex entering-column pricing rule on whichever
    /// engine is configured (CLI `--lp-pricing` plumbing).
    pub fn set_lp_pricing(&mut self, pricing: gmm_ilp::PricingRule) {
        match self {
            SolverBackend::Serial(opts) | SolverBackend::SerialWithCuts(opts, _) => {
                opts.simplex.pricing = pricing;
            }
            SolverBackend::Parallel(popts) => popts.mip.simplex.pricing = pricing,
        }
    }

    /// The configured pricing rule.
    pub fn lp_pricing(&self) -> gmm_ilp::PricingRule {
        match self {
            SolverBackend::Serial(opts) | SolverBackend::SerialWithCuts(opts, _) => {
                opts.simplex.pricing
            }
            SolverBackend::Parallel(popts) => popts.mip.simplex.pricing,
        }
    }

    /// Mutable access to the underlying MIP options, whichever engine is
    /// configured.
    pub fn mip_options_mut(&mut self) -> &mut MipOptions {
        match self {
            SolverBackend::Serial(opts) | SolverBackend::SerialWithCuts(opts, _) => opts,
            SolverBackend::Parallel(popts) => &mut popts.mip,
        }
    }

    /// Thread a remaining time budget, node budget, and control bundle
    /// into the engine options (tightening, never loosening, existing
    /// limits). The pipeline calls this once per global/detailed retry
    /// attempt so limits shrink as the retry loop consumes budget.
    pub fn apply_control(
        &mut self,
        time_left: Option<std::time::Duration>,
        nodes_left: Option<u64>,
        control: &SolveControl,
    ) {
        let mip = self.mip_options_mut();
        if let Some(t) = time_left {
            mip.time_limit = Some(mip.time_limit.map_or(t, |existing| existing.min(t)));
        }
        if let Some(n) = nodes_left {
            mip.node_limit = Some(mip.node_limit.map_or(n, |existing| existing.min(n)));
        }
        if mip.control.cancel.is_none() {
            mip.control.cancel = control.cancel.clone();
        }
        if mip.control.observer.is_none() {
            mip.control.observer = control.observer.clone();
        }
    }
}

/// Errors of the mapping pipeline.
#[derive(Debug, Clone)]
pub enum MapError {
    /// Segments too large for every bank type on the board.
    Unmappable(Vec<SegmentId>),
    /// The ILP is infeasible: the board cannot host the design.
    Infeasible,
    /// The solver hit a limit before finding any integer solution.
    NoSolution,
    /// Engine failure.
    Solver(IlpError),
    /// Detailed mapping failed even after the retry budget (only possible
    /// for banks with more than two ports, where the Figure-3 accounting
    /// is conservative but not exact — paper §4.1.1 and §6).
    DetailedFailed { retries: usize },
    /// The wall-clock deadline expired before any integer solution was
    /// found (a deadline with a feasible incumbent still returns `Ok`).
    Deadline,
    /// The solve's [`gmm_ilp::control::CancelToken`] was cancelled.
    Cancelled,
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::Unmappable(v) => write!(f, "{} segment(s) fit no bank type", v.len()),
            MapError::Infeasible => write!(f, "board cannot host the design"),
            MapError::NoSolution => write!(f, "solver limit reached with no solution"),
            MapError::Solver(e) => write!(f, "solver error: {e}"),
            MapError::DetailedFailed { retries } => {
                write!(f, "detailed mapping failed after {retries} retries")
            }
            MapError::Deadline => write!(f, "deadline exceeded with no solution"),
            MapError::Cancelled => write!(f, "solve cancelled"),
        }
    }
}

impl std::error::Error for MapError {}

impl From<IlpError> for MapError {
    fn from(e: IlpError) -> Self {
        match e {
            IlpError::Deadline => MapError::Deadline,
            IlpError::Cancelled => MapError::Cancelled,
            other => MapError::Solver(other),
        }
    }
}

/// Solver-side counters of one global ILP solve, accumulated by the
/// pipeline across retry attempts and surfaced in
/// [`crate::pipeline::MapStats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveTelemetry {
    /// Final MIP status of the solve (`None` before any solve ran).
    pub status: Option<MipStatus>,
    pub nodes_explored: u64,
    pub lp_iterations: u64,
    pub warm_started_nodes: u64,
    /// Basis refactorizations across all node LPs.
    pub refactorizations: u64,
    /// Worst eta-file fill-in any single node LP reached.
    pub eta_nnz_peak: u64,
    /// 1 when an external warm-start hint was accepted as the starting
    /// incumbent of this solve (see [`solve_global_hinted_with_stats`]).
    pub incumbent_seeded: u64,
    /// Why the engine stopped early, if it did.
    pub stop_reason: Option<StopReason>,
}

/// A no-good cut: forbid assigning this exact segment set to this type
/// simultaneously (used by the global/detailed retry loop, §4.1).
#[derive(Debug, Clone)]
pub struct NoGood {
    pub bank_type: BankTypeId,
    pub segments: Vec<SegmentId>,
}

/// The constructed global model plus its variable map.
pub struct GlobalModel {
    pub model: Model,
    /// `z[d][t]`: the `Z_dt` variable, `None` when the pair is infeasible.
    pub z: Vec<Vec<Option<VarId>>>,
}

/// Build the §4.1 ILP.
///
/// `overlap_aware` activates the lifetime-based capacity modification; it
/// has no effect when the design carries no lifetimes.
pub fn build_global_model(
    design: &Design,
    board: &Board,
    pre: &PreTable,
    matrix: &CostMatrix,
    weights: &CostWeights,
    overlap_aware: bool,
    no_goods: &[NoGood],
) -> Result<GlobalModel, MapError> {
    let unmappable = pre.unmappable_segments();
    if !unmappable.is_empty() {
        return Err(MapError::Unmappable(unmappable));
    }

    let mut model = Model::new();
    model.set_objective_direction(Objective::Minimize);

    let num_d = design.num_segments();
    let num_t = board.num_types();
    let mut z: Vec<Vec<Option<VarId>>> = vec![vec![None; num_t]; num_d];
    for d in 0..num_d {
        for t in 0..num_t {
            let (did, tid) = (SegmentId(d), BankTypeId(t));
            if !pre.is_feasible(did, tid) {
                continue;
            }
            let cost = matrix.pair(did, tid).weighted(weights);
            let var = model.add_binary(cost);
            model.set_var_name(var, format!("Z[{d}][{t}]"));
            z[d][t] = Some(var);
        }
    }

    // Uniqueness: sum_t Z_dt = 1.
    for d in 0..num_d {
        let mut expr = LinExpr::new();
        for t in 0..num_t {
            if let Some(v) = z[d][t] {
                expr.push(v, 1.0);
            }
        }
        let c = model
            .add_constraint(expr, Sense::Eq, 1.0)
            .expect("uniqueness terms valid");
        model.set_constraint_name(c, format!("uniq[{d}]"));
    }

    // Ports: sum_d Z_dt * CP_dt <= P_t * I_t.
    for t in 0..num_t {
        let bank = board.bank(BankTypeId(t));
        let mut expr = LinExpr::new();
        for d in 0..num_d {
            if let Some(v) = z[d][t] {
                expr.push(v, pre.entry(SegmentId(d), BankTypeId(t)).cp() as f64);
            }
        }
        if expr.is_empty() {
            continue;
        }
        let c = model
            .add_constraint(expr, Sense::Le, bank.total_ports() as f64)
            .expect("port terms valid");
        model.set_constraint_name(c, format!("ports[{t}]"));
    }

    // Capacity: global, or per concurrency clique when overlap-aware.
    let cliques: Vec<Vec<SegmentId>> = if overlap_aware {
        design.concurrency_cliques()
    } else {
        vec![(0..num_d).map(SegmentId).collect()]
    };
    for t in 0..num_t {
        let bank = board.bank(BankTypeId(t));
        let cap = bank.total_capacity_bits() as f64;
        for (ci, clique) in cliques.iter().enumerate() {
            let mut expr = LinExpr::new();
            for &d in clique {
                if let Some(v) = z[d.0][t] {
                    expr.push(v, pre.entry(d, BankTypeId(t)).area_bits() as f64);
                }
            }
            if expr.is_empty() {
                continue;
            }
            let c = model
                .add_constraint(expr, Sense::Le, cap)
                .expect("capacity terms valid");
            model.set_constraint_name(c, format!("cap[{t}][{ci}]"));
        }
    }

    // No-good cuts from failed detailed attempts.
    for ng in no_goods {
        let mut expr = LinExpr::new();
        let mut count = 0.0;
        for &d in &ng.segments {
            if let Some(v) = z[d.0][ng.bank_type.0] {
                expr.push(v, 1.0);
                count += 1.0;
            }
        }
        if count > 0.0 {
            model
                .add_constraint(expr, Sense::Le, count - 1.0)
                .expect("no-good terms valid");
        }
    }

    Ok(GlobalModel { model, z })
}

/// Solve the global mapping problem.
pub fn solve_global(
    design: &Design,
    board: &Board,
    pre: &PreTable,
    matrix: &CostMatrix,
    weights: &CostWeights,
    backend: &SolverBackend,
    overlap_aware: bool,
    no_goods: &[NoGood],
) -> Result<GlobalAssignment, MapError> {
    solve_global_with_stats(design, board, pre, matrix, weights, backend, overlap_aware, no_goods)
        .map(|(assignment, _)| assignment)
        .map_err(|(e, _)| e)
}

/// [`solve_global`] plus the engine's [`SolveTelemetry`]. On failure the
/// telemetry rides inside the error-side tuple so deadline/cancel
/// terminations still report how far the search got.
#[allow(clippy::too_many_arguments)]
pub fn solve_global_with_stats(
    design: &Design,
    board: &Board,
    pre: &PreTable,
    matrix: &CostMatrix,
    weights: &CostWeights,
    backend: &SolverBackend,
    overlap_aware: bool,
    no_goods: &[NoGood],
) -> Result<(GlobalAssignment, SolveTelemetry), (MapError, SolveTelemetry)> {
    solve_global_hinted_with_stats(
        design,
        board,
        pre,
        matrix,
        weights,
        backend,
        overlap_aware,
        no_goods,
        None,
    )
}

/// [`solve_global_with_stats`] with an optional warm-start hint: a
/// sibling instance's global assignment (`hint[d]` = bank type index of
/// segment `d`), typically retrieved from the service's persistent
/// family-keyed hint store. The hint is translated onto this model's
/// `Z_dt` variables and offered to the engine as an incumbent seed;
/// it is dropped without effect when it does not fit (wrong segment
/// count, a hinted pair infeasible here) or fails the engine's own
/// feasibility re-check (e.g. against a no-good cut the sibling never
/// had). [`SolveTelemetry::incumbent_seeded`] reports acceptance.
#[allow(clippy::too_many_arguments)]
pub fn solve_global_hinted_with_stats(
    design: &Design,
    board: &Board,
    pre: &PreTable,
    matrix: &CostMatrix,
    weights: &CostWeights,
    backend: &SolverBackend,
    overlap_aware: bool,
    no_goods: &[NoGood],
    hint: Option<&[u32]>,
) -> Result<(GlobalAssignment, SolveTelemetry), (MapError, SolveTelemetry)> {
    let gm = match build_global_model(design, board, pre, matrix, weights, overlap_aware, no_goods)
    {
        Ok(gm) => gm,
        Err(e) => return Err((e, SolveTelemetry::default())),
    };
    // Translate the hinted assignment into a full model point. Every
    // variable of the global model is some `Z_dt`, so setting the hinted
    // pairs to 1.0 over a zero vector describes the assignment exactly.
    let seed = hint.and_then(|types| {
        if types.len() != design.num_segments() {
            return None;
        }
        let mut x = vec![0.0; gm.model.num_vars()];
        for (d, &t) in types.iter().enumerate() {
            let var = gm.z.get(d)?.get(t as usize).copied().flatten()?;
            x[var.index()] = 1.0;
        }
        Some(x)
    });
    let result = match seed {
        Some(x) => {
            let mut seeded_backend = backend.clone();
            seeded_backend.mip_options_mut().incumbent_seed = Some(x);
            seeded_backend.solve(&gm.model)
        }
        None => backend.solve(&gm.model),
    };
    let result = match result {
        Ok(r) => r,
        Err(e) => return Err((MapError::from(e), SolveTelemetry::default())),
    };
    let telemetry = SolveTelemetry {
        status: Some(result.status),
        nodes_explored: result.nodes_explored,
        lp_iterations: result.lp_iterations,
        warm_started_nodes: result.warm_started_nodes,
        refactorizations: result.refactorizations,
        eta_nnz_peak: result.eta_nnz_peak,
        incumbent_seeded: result.incumbent_seeded as u64,
        stop_reason: result.stop_reason,
    };
    match result.status {
        MipStatus::Optimal | MipStatus::Feasible => {}
        MipStatus::Infeasible => return Err((MapError::Infeasible, telemetry)),
        MipStatus::Unbounded => return Err((MapError::NoSolution, telemetry)),
        MipStatus::Unknown => {
            // A limit stopped the search before *any* integer solution:
            // classify by what stopped it.
            let e = match result.stop_reason {
                Some(StopReason::Deadline) => MapError::Deadline,
                Some(StopReason::Cancelled) => MapError::Cancelled,
                _ => MapError::NoSolution,
            };
            return Err((e, telemetry));
        }
    }
    let x = result.best_solution.expect("status has solution");
    let mut type_of = Vec::with_capacity(design.num_segments());
    for d in 0..design.num_segments() {
        let mut chosen = None;
        for t in 0..board.num_types() {
            if let Some(v) = gm.z[d][t] {
                if x[v.index()] > 0.5 {
                    chosen = Some(BankTypeId(t));
                    break;
                }
            }
        }
        type_of.push(chosen.expect("uniqueness constraint guarantees a type"));
    }
    let cost = assignment_cost(matrix, &type_of);
    Ok((GlobalAssignment { type_of, cost }, telemetry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmm_arch::{BankType, Placement, RamConfig};
    use gmm_design::DesignBuilder;

    fn sized_board(onchip: u32, offchip: u32) -> Board {
        Board::new(
            "b",
            vec![
                BankType::new(
                    "onchip",
                    onchip,
                    2,
                    vec![RamConfig::new(4096, 1), RamConfig::new(512, 8)],
                    1,
                    1,
                    Placement::OnChip,
                )
                .unwrap(),
                BankType::new(
                    "offchip",
                    offchip,
                    1,
                    vec![RamConfig::new(262_144, 32)],
                    2,
                    2,
                    Placement::DirectOffChip,
                )
                .unwrap(),
            ],
        )
        .unwrap()
    }

    fn two_tier_board() -> Board {
        // Remember: ports are never shared between segments (paper §6), so
        // a single-port off-chip bank hosts exactly one segment.
        sized_board(4, 16)
    }

    fn solve(design: &Design, board: &Board, overlap: bool) -> Result<GlobalAssignment, MapError> {
        let pre = PreTable::build(design, board);
        let matrix = CostMatrix::build(design, board, &pre);
        solve_global(
            design,
            board,
            &pre,
            &matrix,
            &CostWeights::default(),
            &SolverBackend::default(),
            overlap,
            &[],
        )
    }

    #[test]
    fn small_design_prefers_onchip() {
        let mut b = DesignBuilder::new("d");
        let s = b.segment("s", 256, 8).unwrap();
        let design = b.build().unwrap();
        let board = two_tier_board();
        let ga = solve(&design, &board, false).unwrap();
        assert_eq!(ga.type_of[s.0], BankTypeId(0), "on-chip is cheaper");
        assert_eq!(ga.cost.pin_delay, 0.0);
    }

    #[test]
    fn oversubscription_spills_offchip() {
        // 12 segments of 512x8: each consumes a full on-chip instance
        // (4096 bits); only 4 on-chip instances exist, so most spill.
        let mut b = DesignBuilder::new("d");
        for i in 0..12 {
            b.segment(format!("s{i}"), 512, 8).unwrap();
        }
        let design = b.build().unwrap();
        let board = two_tier_board();
        let ga = solve(&design, &board, false).unwrap();
        let onchip = ga.type_of.iter().filter(|t| t.0 == 0).count();
        let offchip = ga.type_of.iter().filter(|t| t.0 == 1).count();
        assert!(onchip <= 4, "at most one 512x8 per dual-port 4096b instance... {onchip}");
        assert_eq!(onchip + offchip, 12);
        assert!(offchip >= 8);
    }

    #[test]
    fn infeasible_when_board_too_small() {
        let mut b = DesignBuilder::new("d");
        for i in 0..40 {
            b.segment(format!("s{i}"), 262_144, 32).unwrap();
        }
        let design = b.build().unwrap();
        let board = two_tier_board();
        match solve(&design, &board, false) {
            Err(MapError::Infeasible) => {}
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn unmappable_segment_reported() {
        let mut b = DesignBuilder::new("d");
        b.segment("giant", 1 << 23, 64).unwrap();
        let design = b.build().unwrap();
        let board = two_tier_board();
        match solve(&design, &board, false) {
            Err(MapError::Unmappable(v)) => assert_eq!(v.len(), 1),
            other => panic!("expected unmappable, got {other:?}"),
        }
    }

    #[test]
    fn overlap_awareness_packs_more_onchip() {
        use gmm_design::Lifetime;
        // Two phases: 6 segments live in [0,10), 6 in [10,20). With
        // overlap-aware capacity, both phase groups can use on-chip space;
        // without, half must spill.
        let build = |with_lifetimes: bool| {
            let mut b = DesignBuilder::new("d");
            for i in 0..12 {
                let s = b.segment(format!("s{i}"), 512, 8).unwrap();
                if with_lifetimes {
                    let lt = if i < 6 {
                        Lifetime::new(0, 10).unwrap()
                    } else {
                        Lifetime::new(10, 20).unwrap()
                    };
                    b.lifetime(s, lt);
                }
            }
            b.build().unwrap()
        };
        let board = two_tier_board();

        let without = solve(&build(false), &board, true).unwrap();
        let with = solve(&build(true), &board, true).unwrap();
        let onchip_without = without.type_of.iter().filter(|t| t.0 == 0).count();
        let onchip_with = with.type_of.iter().filter(|t| t.0 == 0).count();
        // Ports still bound the overlap-aware case: 8 on-chip ports, each
        // 512x8 segment consumes 2 (a full instance), so max 4 live at
        // once but port constraint is global... it still limits to 4.
        assert!(onchip_with >= onchip_without,
                "overlap awareness can only help: {onchip_with} vs {onchip_without}");
    }

    #[test]
    fn no_good_cut_excludes_assignment() {
        let mut b = DesignBuilder::new("d");
        let s = b.segment("s", 256, 8).unwrap();
        let design = b.build().unwrap();
        let board = two_tier_board();
        let pre = PreTable::build(&design, &board);
        let matrix = CostMatrix::build(&design, &board, &pre);
        // Forbid the on-chip choice for the lone segment.
        let ng = NoGood {
            bank_type: BankTypeId(0),
            segments: vec![s],
        };
        let ga = solve_global(
            &design,
            &board,
            &pre,
            &matrix,
            &CostWeights::default(),
            &SolverBackend::default(),
            false,
            &[ng],
        )
        .unwrap();
        assert_eq!(ga.type_of[s.0], BankTypeId(1), "no-good forces off-chip");
    }

    #[test]
    fn hinted_solve_matches_cold_solve_and_counts_the_seed() {
        let mut b = DesignBuilder::new("d");
        for i in 0..8 {
            b.segment(format!("s{i}"), 512, 8).unwrap();
        }
        let design = b.build().unwrap();
        let board = two_tier_board();
        let pre = PreTable::build(&design, &board);
        let matrix = CostMatrix::build(&design, &board, &pre);
        let w = CostWeights::default();
        let backend = SolverBackend::default();

        let (cold, cold_tel) = solve_global_with_stats(
            &design, &board, &pre, &matrix, &w, &backend, false, &[],
        )
        .unwrap();
        assert_eq!(cold_tel.incumbent_seeded, 0);

        // Seed the second solve with the first's own assignment: it must
        // be accepted and the outcome must be identical.
        let hint: Vec<u32> = cold.type_of.iter().map(|t| t.0 as u32).collect();
        let (warm, warm_tel) = solve_global_hinted_with_stats(
            &design, &board, &pre, &matrix, &w, &backend, false, &[], Some(&hint),
        )
        .unwrap();
        assert_eq!(warm_tel.incumbent_seeded, 1, "own optimum must seed");
        assert_eq!(warm.type_of, cold.type_of);
        assert_eq!(warm.cost, cold.cost);

        // A mis-sized hint is dropped without harming the solve.
        let (dropped, dropped_tel) = solve_global_hinted_with_stats(
            &design, &board, &pre, &matrix, &w, &backend, false, &[], Some(&[0u32]),
        )
        .unwrap();
        assert_eq!(dropped_tel.incumbent_seeded, 0);
        assert_eq!(dropped.type_of, cold.type_of);
    }

    #[test]
    fn parallel_backend_agrees_with_serial() {
        let mut b = DesignBuilder::new("d");
        for i in 0..10 {
            b.segment(format!("s{i}"), 128 << (i % 3), 4 + (i % 5) as u32).unwrap();
        }
        let design = b.build().unwrap();
        let board = two_tier_board();
        let pre = PreTable::build(&design, &board);
        let matrix = CostMatrix::build(&design, &board, &pre);
        let w = CostWeights::default();
        let serial = solve_global(&design, &board, &pre, &matrix, &w,
                                  &SolverBackend::default(), false, &[]).unwrap();
        let parallel = solve_global(&design, &board, &pre, &matrix, &w,
                                    &SolverBackend::Parallel(ParallelOptions::default()),
                                    false, &[]).unwrap();
        let ws = serial.cost.weighted(&w);
        let wp = parallel.cost.weighted(&w);
        assert!((ws - wp).abs() < 1e-6, "serial {ws} vs parallel {wp}");
    }
}
