//! # gmm-core — global/detailed memory mapping for FPGA-based
//! # reconfigurable systems
//!
//! A faithful implementation of Ouaiss & Vemuri, *"Global Memory Mapping
//! for FPGA-Based Reconfigurable Systems"* (IPPS/IPDPS 2001):
//!
//! * [`preprocess`] — §4.1.1: the `consumed_ports` algorithm (Figure 3)
//!   and the `CP/CW/CD` coefficients (Figure 2 decomposition);
//! * [`global`] — §4.1.2–4.1.3: the global ILP over `Z_dt` with
//!   uniqueness, port, and capacity constraints, and the three-component
//!   cost objective;
//! * [`detailed`] / [`detailed_ilp`] — §4.2: detailed mapping onto
//!   concrete instances, ports, and configurations (constructive packer
//!   and fragmentation-minimizing ILP);
//! * [`complete`] — the one-step baseline formulation of the paper's prior
//!   work \[9\], reconstructed from the §4 notation, used by the Table 3
//!   comparison;
//! * [`pipeline`] — the retrying global→detailed [`pipeline::Mapper`];
//! * [`cost`] / [`mapping`] — the cost model and validated mapping types.
//!
//! ```
//! use gmm_core::pipeline::{Mapper, MapperOptions};
//! use gmm_arch::Board;
//! use gmm_design::DesignBuilder;
//!
//! let mut b = DesignBuilder::new("quick");
//! b.segment("coeffs", 128, 12).unwrap();
//! b.segment("frame", 4096, 8).unwrap();
//! let design = b.build().unwrap();
//! let board = Board::prototyping("XCV300", 2).unwrap();
//!
//! let outcome = Mapper::new(MapperOptions::new()).map(&design, &board).unwrap();
//! assert_eq!(outcome.global.type_of.len(), 2);
//! ```

pub mod arbitration;
pub mod complete;
pub mod cost;
pub mod detailed;
pub mod detailed_ilp;
pub mod global;
pub mod mapping;
pub mod multipu;
pub mod pipeline;
pub mod preprocess;

pub use arbitration::{map_detailed_arbitrated, solve_global_arbitrated, ArbitratedAssignment, ArbitrationOptions};
pub use complete::{solve_complete, solve_complete_with_stats, ModelStats};
pub use cost::{CostBreakdown, CostMatrix, CostWeights};
pub use detailed::map_detailed;
pub use detailed_ilp::{map_detailed_ilp, DetailedIlpOptions};
pub use global::{
    solve_global, solve_global_with_stats, MapError, NoGood, SolveTelemetry, SolverBackend,
};
pub use mapping::{validate_detailed, validate_detailed_policy, DetailedMapping, Fragment, GlobalAssignment, ValidationPolicy, Violation};
pub use multipu::{map_multi_pu, MultiPuBoard, PuId, PuOwnership};
pub use pipeline::{DetailedStrategy, MapRun, MapStats, Mapper, MapperOptions, MappingOutcome};
pub use preprocess::{consumed_ports, enumerate_port_allocations, round_pow2, PreTable};
