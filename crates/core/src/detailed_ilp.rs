//! ILP-based detailed mapper (paper §4.2).
//!
//! The paper develops (but does not reprint) an ILP for detailed mapping
//! whose optimization factors are *reducing on-chip interconnection
//! congestion* and *reducing data-structure fragmentation*. This module
//! implements that formulation: for each bank type, fragments are assigned
//! to concrete instances by a small ILP that
//!
//! * packs each fragment onto exactly one instance,
//! * respects per-instance port and capacity limits,
//! * minimizes the number of instances touched (fragmentation) with a
//!   small tie-break toward low instance indices (which also breaks the
//!   instance-permutation symmetry).
//!
//! Because all instances of a type are identical, any feasible choice has
//! the same global cost; this ILP only polishes secondary quality metrics,
//! exactly as §4.2 prescribes. The constructive mapper remains the
//! fallback when the ILP hits its node budget.

use crate::detailed::{fragment_segment, map_detailed, DetailedFailure, FragSpec, InstanceAllocator};
use crate::mapping::{DetailedMapping, Fragment, GlobalAssignment};
use crate::preprocess::PreTable;
use gmm_arch::{BankTypeId, Board};
use gmm_design::Design;
use gmm_ilp::branch::{solve_mip, MipOptions};
use gmm_ilp::control::SolveControl;
use gmm_ilp::model::{LinExpr, Model, Objective, Sense};

/// Options for the ILP detailed mapper.
#[derive(Debug, Clone)]
pub struct DetailedIlpOptions {
    /// Per-type node budget before falling back to the constructive
    /// packer.
    pub node_limit: u64,
    /// Extra instances beyond the lower bound made available to the
    /// packing model (small slack keeps the model tiny without cutting off
    /// feasible packings).
    pub instance_slack: u32,
    /// Absolute wall-clock deadline shared by *all* per-type packing
    /// ILPs; the pipeline injects the session deadline here. Each
    /// packing solve derives its time limit from what remains when it
    /// starts, so a board with many bank types cannot overshoot the
    /// session budget by a per-type factor. Expiry falls back to the
    /// constructive packer, like the node budget.
    pub deadline: Option<std::time::Instant>,
    /// Cancellation/progress bundle; the pipeline injects the session's
    /// control so a cancel stops the packing ILP within milliseconds
    /// (and the constructive fallback finishes the job).
    pub control: SolveControl,
}

impl Default for DetailedIlpOptions {
    fn default() -> Self {
        DetailedIlpOptions {
            node_limit: 20_000,
            instance_slack: 3,
            deadline: None,
            control: SolveControl::default(),
        }
    }
}

/// Run ILP-based detailed mapping; falls back to the constructive packer
/// per type when the ILP cannot prove a packing within its budget.
pub fn map_detailed_ilp(
    design: &Design,
    board: &Board,
    pre: &PreTable,
    global: &GlobalAssignment,
    opts: &DetailedIlpOptions,
) -> Result<DetailedMapping, DetailedFailure> {
    let mut mapping = DetailedMapping::default();
    let by_type = global.segments_by_type(board.num_types());

    for (t, segments) in by_type.iter().enumerate() {
        if segments.is_empty() {
            continue;
        }
        let tid = BankTypeId(t);
        let bank = board.bank(tid);

        let mut specs: Vec<FragSpec> = Vec::new();
        for &d in segments {
            let seg = design.segment(d);
            specs.extend(fragment_segment(bank, d, seg.depth, seg.width));
        }

        match pack_with_ilp(&specs, bank.ports, bank.capacity_bits(), bank.instances, opts) {
            Some(placement) => {
                realize_packing(tid, bank, &specs, &placement, &mut mapping).map_err(|_| {
                    DetailedFailure {
                        bank_type: tid,
                        segments: segments.clone(),
                    }
                })?;
            }
            None => {
                // Fall back: constructive packer for this type only.
                let sub_global = GlobalAssignment {
                    type_of: global.type_of.clone(),
                    cost: global.cost,
                };
                let sub = map_detailed(design, board, pre, &sub_global)?;
                // Keep only this type's fragments from the fallback.
                mapping
                    .fragments
                    .extend(sub.fragments.into_iter().filter(|f| f.bank_type == tid));
            }
        }
    }
    Ok(mapping)
}

/// Solve the per-type packing ILP. Returns `placement[f] = instance`.
fn pack_with_ilp(
    specs: &[FragSpec],
    ports: u32,
    capacity_bits: u64,
    instances: u32,
    opts: &DetailedIlpOptions,
) -> Option<Vec<u32>> {
    if specs.is_empty() {
        return Some(Vec::new());
    }
    // Lower bound on instances needed: by ports and by bits.
    let total_ep: u64 = specs.iter().map(|s| s.ep as u64).sum();
    let total_bits: u64 = specs.iter().map(FragSpec::reserved_bits).sum();
    let lb = (total_ep.div_ceil(ports as u64)).max(total_bits.div_ceil(capacity_bits)) as u32;
    let avail = (lb + opts.instance_slack).min(instances);
    if avail == 0 {
        return None;
    }

    let mut model = Model::new();
    model.set_objective_direction(Objective::Minimize);
    let nf = specs.len();
    let ni = avail as usize;

    // a[f][i] assignment, u[i] usage.
    let a: Vec<Vec<_>> = (0..nf)
        .map(|f| {
            (0..ni)
                // Tiny index-proportional cost: deterministic tie-break and
                // symmetry reduction.
                .map(|i| model.add_binary(1e-4 * (i as f64) * (1.0 + f as f64 / nf as f64)))
                .collect()
        })
        .collect();
    let u: Vec<_> = (0..ni).map(|_| model.add_binary(1.0)).collect();

    for f in 0..nf {
        let mut expr = LinExpr::new();
        for i in 0..ni {
            expr.push(a[f][i], 1.0);
        }
        model.add_constraint(expr, Sense::Eq, 1.0).ok()?;
    }
    for i in 0..ni {
        // Ports.
        let mut pexpr = LinExpr::new();
        for f in 0..nf {
            pexpr.push(a[f][i], specs[f].ep as f64);
        }
        pexpr.push(u[i], -(ports as f64));
        model.add_constraint(pexpr, Sense::Le, 0.0).ok()?;
        // Bits.
        let mut bexpr = LinExpr::new();
        for f in 0..nf {
            bexpr.push(a[f][i], specs[f].reserved_bits() as f64);
        }
        bexpr.push(u[i], -(capacity_bits as f64));
        model.add_constraint(bexpr, Sense::Le, 0.0).ok()?;
    }
    // Symmetry breaking: u_i >= u_{i+1}.
    for i in 0..ni.saturating_sub(1) {
        let expr = LinExpr::new().add(u[i], 1.0).add(u[i + 1], -1.0);
        model.add_constraint(expr, Sense::Ge, 0.0).ok()?;
    }

    let mip = MipOptions {
        node_limit: Some(opts.node_limit),
        // Re-derive from the absolute deadline at the moment this
        // packing starts: earlier per-type solves already spent budget.
        time_limit: opts
            .deadline
            .map(|dl| dl.saturating_duration_since(std::time::Instant::now())),
        control: opts.control.clone(),
        ..MipOptions::default()
    };
    let result = solve_mip(&model, &mip).ok()?;
    if !result.status.has_solution() {
        return None;
    }
    let x = result.best_solution?;
    let mut placement = vec![0u32; nf];
    for f in 0..nf {
        let i = (0..ni).find(|&i| x[a[f][i].index()] > 0.5)?;
        placement[f] = i as u32;
    }
    Some(placement)
}

/// Turn an instance placement into concrete fragments (ports + aligned
/// base addresses) using the shared per-instance allocator.
fn realize_packing(
    tid: BankTypeId,
    bank: &gmm_arch::BankType,
    specs: &[FragSpec],
    placement: &[u32],
    mapping: &mut DetailedMapping,
) -> Result<(), ()> {
    let ni = placement.iter().copied().max().map_or(0, |m| m + 1) as usize;
    let mut allocators: Vec<InstanceAllocator> =
        (0..ni).map(|_| InstanceAllocator::new(bank)).collect();
    // Within an instance, place big fragments first (buddy discipline).
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by(|&x, &y| {
        specs[y]
            .ep
            .cmp(&specs[x].ep)
            .then(specs[y].reserved_bits().cmp(&specs[x].reserved_bits()))
    });
    for f in order {
        let inst = placement[f] as usize;
        let (first_port, base_word) = allocators[inst].try_place(&specs[f]).ok_or(())?;
        mapping.fragments.push(Fragment {
            segment: specs[f].segment,
            bank_type: tid,
            instance: inst as u32,
            ports: (first_port..first_port + specs[f].ep).collect(),
            config: specs[f].config,
            base_word,
            used_depth: specs[f].used_depth,
            reserved_depth: specs[f].reserved_depth,
            bit_offset: specs[f].bit_offset,
            word_offset: specs[f].word_offset,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostMatrix, CostWeights};
    use crate::global::{solve_global, SolverBackend};
    use crate::mapping::validate_detailed;
    use gmm_arch::{BankType, Placement, RamConfig};
    use gmm_design::DesignBuilder;

    fn board() -> Board {
        Board::new(
            "b",
            vec![
                BankType::new(
                    "onchip",
                    8,
                    2,
                    vec![
                        RamConfig::new(4096, 1),
                        RamConfig::new(1024, 4),
                        RamConfig::new(512, 8),
                        RamConfig::new(256, 16),
                    ],
                    1,
                    1,
                    Placement::OnChip,
                )
                .unwrap(),
                gmm_arch::devices::off_chip::zbt_sram("sram", 4, 65536, 32),
            ],
        )
        .unwrap()
    }

    #[test]
    fn ilp_detailed_validates_and_minimizes_fragmentation() {
        let mut b = DesignBuilder::new("d");
        for i in 0..6 {
            b.segment(format!("s{i}"), 100 + 50 * i, 4 + (i % 3))
                .unwrap();
        }
        let design = b.build().unwrap();
        let board = board();
        let pre = PreTable::build(&design, &board);
        let matrix = CostMatrix::build(&design, &board, &pre);
        let global = solve_global(
            &design,
            &board,
            &pre,
            &matrix,
            &CostWeights::default(),
            &SolverBackend::default(),
            false,
            &[],
        )
        .unwrap();

        let ilp = map_detailed_ilp(&design, &board, &pre, &global, &DetailedIlpOptions::default())
            .unwrap();
        assert!(validate_detailed(&design, &board, &ilp).is_empty());

        let constructive = map_detailed(&design, &board, &pre, &global).unwrap();
        assert!(
            ilp.instances_used() <= constructive.instances_used(),
            "ILP packing should not use more instances: {} vs {}",
            ilp.instances_used(),
            constructive.instances_used()
        );
    }

    #[test]
    fn empty_type_assignments_are_fine() {
        let mut b = DesignBuilder::new("d");
        b.segment("only", 64, 8).unwrap();
        let design = b.build().unwrap();
        let board = board();
        let pre = PreTable::build(&design, &board);
        let global = GlobalAssignment {
            type_of: vec![BankTypeId(0)],
            cost: Default::default(),
        };
        let m = map_detailed_ilp(&design, &board, &pre, &global, &DetailedIlpOptions::default())
            .unwrap();
        assert!(!m.fragments.is_empty());
        assert!(validate_detailed(&design, &board, &m).is_empty());
    }
}
