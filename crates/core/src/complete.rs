//! The **complete** one-step memory-mapping ILP — the baseline the paper
//! compares against (its own prior work \[9\], DATE 2001).
//!
//! The full formulation of \[9\] is not reprinted in the paper; this module
//! reconstructs it faithfully from the §4 notation list, which defines all
//! three variable families:
//!
//! * `Z_dt`   — structure `d` uses bank type `t`;
//! * `X_dtip` — structure `d` is assigned to port `p` of instance `i` of
//!   type `t`;
//! * `Y_tipc` — configuration `c` is selected for port `p` of instance `i`
//!   of type `t` (multi-configuration banks only).
//!
//! Constraints: uniqueness over `Z`; port-count linking
//! (`Σ_ip X_dtip = CP_dt · Z_dt`); port exclusivity (`Σ_d X_dtip ≤ 1`,
//! §6: no arbitration); per-type capacity; one configuration per port; and
//! configuration compatibility (a port serving `d` must be configured as
//! `d`'s α or β configuration).
//!
//! The objective depends only on `Z_dt` and is identical to the global
//! formulation's, so **the optimal cost of this model equals the
//! global/detailed optimum** — the paper's key observation, which the test
//! suite and the property tests in `tests/` verify. What differs is size:
//! `Σ_t I_t·P_t` port variables per structure and `Σ C_t` configuration
//! variables per port make this model explode on large boards, which is
//! exactly the Table 3 result.

use crate::cost::{assignment_cost, CostMatrix, CostWeights};
use crate::global::{MapError, SolverBackend};
use crate::mapping::GlobalAssignment;
use crate::preprocess::PreTable;
use gmm_arch::{BankTypeId, Board};
use gmm_design::{Design, SegmentId};
use gmm_ilp::error::MipStatus;
use gmm_ilp::model::{LinExpr, Model, Objective, Sense, VarId};

/// Size statistics of a constructed model (reported by the Table 3
/// harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModelStats {
    pub variables: usize,
    pub constraints: usize,
    pub nonzeros: usize,
}

impl ModelStats {
    pub fn of(model: &Model) -> Self {
        ModelStats {
            variables: model.num_vars(),
            constraints: model.num_constraints(),
            nonzeros: model.nnz(),
        }
    }
}

/// The constructed complete model plus the `Z` variable map needed to
/// extract the assignment.
pub struct CompleteModel {
    pub model: Model,
    pub z: Vec<Vec<Option<VarId>>>,
    pub stats: ModelStats,
}

/// Build the complete one-step ILP.
pub fn build_complete_model(
    design: &Design,
    board: &Board,
    pre: &PreTable,
    matrix: &CostMatrix,
    weights: &CostWeights,
    overlap_aware: bool,
) -> Result<CompleteModel, MapError> {
    let unmappable = pre.unmappable_segments();
    if !unmappable.is_empty() {
        return Err(MapError::Unmappable(unmappable));
    }

    let mut model = Model::new();
    model.set_objective_direction(Objective::Minimize);
    let num_d = design.num_segments();
    let num_t = board.num_types();

    // Z_dt.
    let mut z: Vec<Vec<Option<VarId>>> = vec![vec![None; num_t]; num_d];
    for d in 0..num_d {
        for t in 0..num_t {
            let (did, tid) = (SegmentId(d), BankTypeId(t));
            if !pre.is_feasible(did, tid) {
                continue;
            }
            let cost = matrix.pair(did, tid).weighted(weights);
            let v = model.add_binary(cost);
            model.set_var_name(v, format!("Z[{d}][{t}]"));
            z[d][t] = Some(v);
        }
    }

    // X_dtip: flat index per type over (instance, port).
    // x[d][t] = Vec of port variables, length I_t * P_t.
    let mut x: Vec<Vec<Vec<VarId>>> = vec![Vec::new(); num_d];
    for d in 0..num_d {
        x[d] = (0..num_t)
            .map(|t| {
                let tid = BankTypeId(t);
                if z[d][t].is_none() {
                    return Vec::new();
                }
                let bank = board.bank(tid);
                (0..bank.total_ports())
                    .map(|ip| {
                        let v = model.add_binary(0.0);
                        model.set_var_name(
                            v,
                            format!("X[{d}][{t}][{}][{}]", ip / bank.ports, ip % bank.ports),
                        );
                        v
                    })
                    .collect()
            })
            .collect();
    }

    // Y_tipc for multi-configuration types.
    let mut y: Vec<Vec<Vec<VarId>>> = Vec::with_capacity(num_t); // y[t][ip][c]
    for t in 0..num_t {
        let bank = board.bank(BankTypeId(t));
        if bank.num_configs() <= 1 {
            y.push(Vec::new());
            continue;
        }
        let per_port: Vec<Vec<VarId>> = (0..bank.total_ports())
            .map(|ip| {
                (0..bank.num_configs())
                    .map(|c| {
                        let v = model.add_binary(0.0);
                        model.set_var_name(v, format!("Y[{t}][{ip}][{c}]"));
                        v
                    })
                    .collect()
            })
            .collect();
        y.push(per_port);
    }

    // Uniqueness.
    for d in 0..num_d {
        let mut expr = LinExpr::new();
        for t in 0..num_t {
            if let Some(v) = z[d][t] {
                expr.push(v, 1.0);
            }
        }
        model
            .add_constraint(expr, Sense::Eq, 1.0)
            .expect("uniqueness valid");
    }

    // Port-count linking: sum_ip X = CP_dt * Z.
    for d in 0..num_d {
        for t in 0..num_t {
            let Some(zv) = z[d][t] else { continue };
            let cp = pre.entry(SegmentId(d), BankTypeId(t)).cp() as f64;
            let mut expr = LinExpr::new();
            for &xv in &x[d][t] {
                expr.push(xv, 1.0);
            }
            expr.push(zv, -cp);
            model
                .add_constraint(expr, Sense::Eq, 0.0)
                .expect("linking valid");
        }
    }

    // Port exclusivity: each physical port serves at most one structure.
    for t in 0..num_t {
        let bank = board.bank(BankTypeId(t));
        for ip in 0..bank.total_ports() as usize {
            let mut expr = LinExpr::new();
            for (d, xd) in x.iter().enumerate() {
                if z[d][t].is_some() {
                    expr.push(xd[t][ip], 1.0);
                }
            }
            if expr.is_empty() {
                continue;
            }
            model
                .add_constraint(expr, Sense::Le, 1.0)
                .expect("exclusivity valid");
        }
    }

    // Capacity (same form as global; per clique when overlap-aware).
    let cliques: Vec<Vec<SegmentId>> = if overlap_aware {
        design.concurrency_cliques()
    } else {
        vec![(0..num_d).map(SegmentId).collect()]
    };
    for t in 0..num_t {
        let bank = board.bank(BankTypeId(t));
        let cap = bank.total_capacity_bits() as f64;
        for clique in &cliques {
            let mut expr = LinExpr::new();
            for &d in clique {
                if let Some(v) = z[d.0][t] {
                    expr.push(v, pre.entry(d, BankTypeId(t)).area_bits() as f64);
                }
            }
            if expr.is_empty() {
                continue;
            }
            model
                .add_constraint(expr, Sense::Le, cap)
                .expect("capacity valid");
        }
    }

    // Configuration selection and compatibility.
    for t in 0..num_t {
        let bank = board.bank(BankTypeId(t));
        if bank.num_configs() <= 1 {
            continue;
        }
        for ip in 0..bank.total_ports() as usize {
            // Exactly one configuration per port.
            let mut sel = LinExpr::new();
            for c in 0..bank.num_configs() {
                sel.push(y[t][ip][c], 1.0);
            }
            model
                .add_constraint(sel, Sense::Eq, 1.0)
                .expect("selection valid");
            // A port serving structure d must be configured as d's alpha
            // or beta configuration.
            for d in 0..num_d {
                if z[d][t].is_none() {
                    continue;
                }
                let split = pre.entry(SegmentId(d), BankTypeId(t)).split;
                let mut expr = LinExpr::new();
                expr.push(x[d][t][ip], 1.0);
                for (c, cfg) in bank.configs.iter().enumerate() {
                    if *cfg == split.alpha || *cfg == split.beta {
                        expr.push(y[t][ip][c], -1.0);
                    }
                }
                model
                    .add_constraint(expr, Sense::Le, 0.0)
                    .expect("compatibility valid");
            }
        }
    }

    let stats = ModelStats::of(&model);
    Ok(CompleteModel { model, z, stats })
}

/// Solve the complete formulation and extract the type assignment.
pub fn solve_complete(
    design: &Design,
    board: &Board,
    pre: &PreTable,
    matrix: &CostMatrix,
    weights: &CostWeights,
    backend: &SolverBackend,
    overlap_aware: bool,
) -> Result<(GlobalAssignment, ModelStats), MapError> {
    solve_complete_with_stats(design, board, pre, matrix, weights, backend, overlap_aware)
        .map(|(assignment, stats, _)| (assignment, stats))
}

/// [`solve_complete`] plus the engine's [`crate::global::SolveTelemetry`],
/// so callers can distinguish a proven optimum from a limit-truncated
/// feasible incumbent (the CLI's `--complete --deadline-secs` path does).
#[allow(clippy::too_many_arguments)]
pub fn solve_complete_with_stats(
    design: &Design,
    board: &Board,
    pre: &PreTable,
    matrix: &CostMatrix,
    weights: &CostWeights,
    backend: &SolverBackend,
    overlap_aware: bool,
) -> Result<(GlobalAssignment, ModelStats, crate::global::SolveTelemetry), MapError> {
    let cm = build_complete_model(design, board, pre, matrix, weights, overlap_aware)?;
    let result = backend.solve(&cm.model)?;
    let telemetry = crate::global::SolveTelemetry {
        status: Some(result.status),
        nodes_explored: result.nodes_explored,
        lp_iterations: result.lp_iterations,
        warm_started_nodes: result.warm_started_nodes,
        refactorizations: result.refactorizations,
        eta_nnz_peak: result.eta_nnz_peak,
        incumbent_seeded: result.incumbent_seeded as u64,
        stop_reason: result.stop_reason,
    };
    match result.status {
        MipStatus::Optimal | MipStatus::Feasible => {}
        MipStatus::Infeasible => return Err(MapError::Infeasible),
        MipStatus::Unbounded => return Err(MapError::NoSolution),
        // Stopped before any integer solution: classify by the stopper.
        MipStatus::Unknown => {
            return Err(match result.stop_reason {
                Some(gmm_ilp::error::StopReason::Deadline) => MapError::Deadline,
                Some(gmm_ilp::error::StopReason::Cancelled) => MapError::Cancelled,
                _ => MapError::NoSolution,
            })
        }
    }
    let sol = result.best_solution.expect("status has solution");
    let mut type_of = Vec::with_capacity(design.num_segments());
    for d in 0..design.num_segments() {
        let mut chosen = None;
        for t in 0..board.num_types() {
            if let Some(v) = cm.z[d][t] {
                if sol[v.index()] > 0.5 {
                    chosen = Some(BankTypeId(t));
                    break;
                }
            }
        }
        type_of.push(chosen.expect("uniqueness guarantees a type"));
    }
    let cost = assignment_cost(matrix, &type_of);
    Ok((GlobalAssignment { type_of, cost }, cm.stats, telemetry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::solve_global;
    use gmm_arch::{BankType, Placement, RamConfig};
    use gmm_design::DesignBuilder;
    use gmm_ilp::branch::MipOptions;

    fn small_board() -> Board {
        Board::new(
            "b",
            vec![
                BankType::new(
                    "onchip",
                    4,
                    2,
                    vec![
                        RamConfig::new(4096, 1),
                        RamConfig::new(1024, 4),
                        RamConfig::new(512, 8),
                    ],
                    1,
                    1,
                    Placement::OnChip,
                )
                .unwrap(),
                BankType::new(
                    "offchip",
                    4,
                    1,
                    vec![RamConfig::new(65536, 16)],
                    2,
                    2,
                    Placement::DirectOffChip,
                )
                .unwrap(),
            ],
        )
        .unwrap()
    }

    fn small_design(n: usize) -> Design {
        let mut b = DesignBuilder::new("d");
        for i in 0..n {
            b.segment(format!("s{i}"), 64 + 32 * i as u32, 2 + (i % 4) as u32)
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn complete_matches_global_optimum() {
        let design = small_design(5);
        let board = small_board();
        let pre = PreTable::build(&design, &board);
        let matrix = CostMatrix::build(&design, &board, &pre);
        let w = CostWeights::default();
        let backend = SolverBackend::Serial(MipOptions::default());

        let global = solve_global(&design, &board, &pre, &matrix, &w, &backend, false, &[]).unwrap();
        let (complete, stats) =
            solve_complete(&design, &board, &pre, &matrix, &w, &backend, false).unwrap();
        let cg = global.cost.weighted(&w);
        let cc = complete.cost.weighted(&w);
        assert!(
            (cg - cc).abs() < 1e-6,
            "global {cg} vs complete {cc} must agree"
        );
        // The complete model is strictly larger.
        assert!(stats.variables > design.num_segments() * board.num_types());
    }

    #[test]
    fn complete_model_is_much_bigger_than_global() {
        let design = small_design(6);
        let board = small_board();
        let pre = PreTable::build(&design, &board);
        let matrix = CostMatrix::build(&design, &board, &pre);
        let w = CostWeights::default();
        let gm = crate::global::build_global_model(
            &design, &board, &pre, &matrix, &w, false, &[],
        )
        .unwrap();
        let cm = build_complete_model(&design, &board, &pre, &matrix, &w, false).unwrap();
        assert!(
            cm.stats.variables > 5 * gm.model.num_vars(),
            "complete {} vs global {}",
            cm.stats.variables,
            gm.model.num_vars()
        );
        assert!(cm.stats.constraints > gm.model.num_constraints());
    }

    #[test]
    fn complete_infeasible_when_ports_exhausted() {
        // 9 segments each needing a dedicated port, 8+4 ports available,
        // but every segment too big for... make them need 2 ports on-chip.
        let mut b = DesignBuilder::new("d");
        for i in 0..13 {
            b.segment(format!("s{i}"), 60000, 16).unwrap();
        }
        let design = b.build().unwrap();
        let board = small_board();
        let pre = PreTable::build(&design, &board);
        // 60000x16 does not fit on-chip at all; off-chip holds 4 (1/bank).
        let matrix = CostMatrix::build(&design, &board, &pre);
        let w = CostWeights::default();
        let backend = SolverBackend::Serial(MipOptions::default());
        match solve_complete(&design, &board, &pre, &matrix, &w, &backend, false) {
            Err(MapError::Infeasible) | Err(MapError::Unmappable(_)) => {}
            other => panic!("expected infeasible, got {:?}", other.map(|(a, _)| a)),
        }
    }
}
