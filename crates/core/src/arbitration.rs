//! Port-arbitration extension (paper §6, listed as future work).
//!
//! The base model dedicates every port to a single segment: "two logical
//! segments will not be mapped onto the same port. In the event of RAM
//! limitation, the model could allow data structures to overlap at the
//! price of adding conflict resolution to the objective function." This
//! module implements exactly that trade:
//!
//! * the global ILP gains one integer *overflow* variable per bank type —
//!   `Σ_d Z_dt·CP_dt − o_t ≤ P_t·I_t`, with `o_t` capped at
//!   `(sharing−1)·P_t·I_t` and priced into the objective at
//!   `penalty_per_port` (the cost of the arbiter logic and serialization);
//! * the detailed packer gets `sharing` virtual slots per physical port
//!   (virtual slot `v` is physical port `v mod P_t`);
//! * validation uses [`ValidationPolicy`] with the raised sharing limit;
//! * the cycle simulator needs **no change**: shared ports serialize
//!   naturally through per-port busy times, so the latency price shows up
//!   as stall cycles.

use crate::cost::{assignment_cost, CostMatrix, CostWeights};
use crate::detailed::{fragment_segment, DetailedFailure, FragSpec, InstanceAllocator};
use crate::global::{MapError, SolverBackend};
use crate::mapping::{DetailedMapping, Fragment, GlobalAssignment, ValidationPolicy};
use crate::preprocess::PreTable;
use gmm_arch::{BankTypeId, Board};
use gmm_design::{Design, SegmentId};
use gmm_ilp::error::MipStatus;
use gmm_ilp::model::{LinExpr, Model, Objective, Sense, VarId};

/// Arbitration configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArbitrationOptions {
    /// Maximum segments per physical port (1 = the base model).
    pub sharing: u32,
    /// Objective penalty per oversubscribed port (the conflict-resolution
    /// price of §6).
    pub penalty_per_port: f64,
}

impl Default for ArbitrationOptions {
    fn default() -> Self {
        ArbitrationOptions {
            sharing: 2,
            penalty_per_port: 64.0,
        }
    }
}

impl ArbitrationOptions {
    /// The validation policy matching this configuration.
    pub fn policy(&self) -> ValidationPolicy {
        ValidationPolicy {
            max_port_sharing: self.sharing.max(1),
        }
    }
}

/// Result of an arbitrated global solve.
#[derive(Debug, Clone)]
pub struct ArbitratedAssignment {
    pub global: GlobalAssignment,
    /// Oversubscribed ports per bank type (`o_t`).
    pub overflow: Vec<u32>,
    /// Total penalty paid in the objective.
    pub penalty_paid: f64,
}

/// Solve global mapping with port arbitration allowed.
#[allow(clippy::too_many_arguments)]
pub fn solve_global_arbitrated(
    design: &Design,
    board: &Board,
    pre: &PreTable,
    matrix: &CostMatrix,
    weights: &CostWeights,
    backend: &SolverBackend,
    arb: &ArbitrationOptions,
) -> Result<ArbitratedAssignment, MapError> {
    let unmappable = pre.unmappable_segments();
    if !unmappable.is_empty() {
        return Err(MapError::Unmappable(unmappable));
    }
    let sharing = arb.sharing.max(1);

    let mut model = Model::new();
    model.set_objective_direction(Objective::Minimize);
    let num_d = design.num_segments();
    let num_t = board.num_types();

    let mut z: Vec<Vec<Option<VarId>>> = vec![vec![None; num_t]; num_d];
    for d in 0..num_d {
        for t in 0..num_t {
            let (did, tid) = (SegmentId(d), BankTypeId(t));
            // With sharing, port feasibility widens accordingly.
            let e = pre.entry(did, tid);
            let bank = board.bank(tid);
            let fits = e.cp() <= bank.total_ports() * sharing
                && e.area_bits() <= bank.total_capacity_bits();
            if !fits {
                continue;
            }
            let cost = matrix.pair(did, tid).weighted(weights);
            z[d][t] = Some(model.add_binary(cost));
        }
        if z[d].iter().all(Option::is_none) {
            return Err(MapError::Unmappable(vec![SegmentId(d)]));
        }
    }

    // Overflow variables.
    let overflow_vars: Vec<VarId> = (0..num_t)
        .map(|t| {
            let bank = board.bank(BankTypeId(t));
            let cap = ((sharing - 1) * bank.total_ports()) as f64;
            model
                .add_integer(0.0, cap, arb.penalty_per_port)
                .expect("bounds valid")
        })
        .collect();

    // Uniqueness.
    for zd in z.iter() {
        let mut expr = LinExpr::new();
        for zv in zd.iter().flatten() {
            expr.push(*zv, 1.0);
        }
        model
            .add_constraint(expr, Sense::Eq, 1.0)
            .expect("uniqueness valid");
    }
    // Ports with overflow: sum Z*CP - o_t <= Pt*It.
    for t in 0..num_t {
        let bank = board.bank(BankTypeId(t));
        let mut expr = LinExpr::new();
        for d in 0..num_d {
            if let Some(v) = z[d][t] {
                expr.push(v, pre.entry(SegmentId(d), BankTypeId(t)).cp() as f64);
            }
        }
        if expr.is_empty() {
            continue;
        }
        expr.push(overflow_vars[t], -1.0);
        model
            .add_constraint(expr, Sense::Le, bank.total_ports() as f64)
            .expect("ports valid");
    }
    // Capacity unchanged.
    for t in 0..num_t {
        let bank = board.bank(BankTypeId(t));
        let mut expr = LinExpr::new();
        for d in 0..num_d {
            if let Some(v) = z[d][t] {
                expr.push(v, pre.entry(SegmentId(d), BankTypeId(t)).area_bits() as f64);
            }
        }
        if expr.is_empty() {
            continue;
        }
        model
            .add_constraint(expr, Sense::Le, bank.total_capacity_bits() as f64)
            .expect("capacity valid");
    }

    let result = backend.solve(&model)?;
    match result.status {
        MipStatus::Optimal | MipStatus::Feasible => {}
        MipStatus::Infeasible => return Err(MapError::Infeasible),
        _ => return Err(MapError::NoSolution),
    }
    let x = result.best_solution.expect("has solution");
    let mut type_of = Vec::with_capacity(num_d);
    for zd in z.iter() {
        let t = (0..num_t)
            .find(|&t| zd[t].is_some_and(|v| x[v.index()] > 0.5))
            .expect("uniqueness");
        type_of.push(BankTypeId(t));
    }
    let overflow: Vec<u32> = overflow_vars
        .iter()
        .map(|v| x[v.index()].round() as u32)
        .collect();
    let penalty_paid = overflow.iter().sum::<u32>() as f64 * arb.penalty_per_port;
    let cost = assignment_cost(matrix, &type_of);
    Ok(ArbitratedAssignment {
        global: GlobalAssignment { type_of, cost },
        overflow,
        penalty_paid,
    })
}

/// Detailed mapping with shared ports: virtual slots `0..P_t*sharing`,
/// physical port = slot mod `P_t`.
pub fn map_detailed_arbitrated(
    design: &Design,
    board: &Board,
    global: &GlobalAssignment,
    arb: &ArbitrationOptions,
) -> Result<DetailedMapping, DetailedFailure> {
    let sharing = arb.sharing.max(1);
    let mut mapping = DetailedMapping::default();
    let by_type = global.segments_by_type(board.num_types());

    for (t, segments) in by_type.iter().enumerate() {
        if segments.is_empty() {
            continue;
        }
        let tid = BankTypeId(t);
        let bank = board.bank(tid);
        let mut specs: Vec<FragSpec> = Vec::new();
        for &d in segments {
            let seg = design.segment(d);
            specs.extend(fragment_segment(bank, d, seg.depth, seg.width));
        }
        specs.sort_by(|a, b| {
            b.ep.cmp(&a.ep)
                .then(b.reserved_bits().cmp(&a.reserved_bits()))
        });

        let mut instances: Vec<InstanceAllocator> = Vec::new();
        for spec in &specs {
            let mut placed = None;
            for (i, inst) in instances.iter_mut().enumerate() {
                if let Some(hit) = inst.try_place(spec) {
                    placed = Some((i as u32, hit));
                    break;
                }
            }
            if placed.is_none() && (instances.len() as u32) < bank.instances {
                let mut inst = InstanceAllocator::with_sharing(bank, sharing);
                if let Some(hit) = inst.try_place(spec) {
                    placed = Some((instances.len() as u32, hit));
                }
                instances.push(inst);
            }
            let Some((instance, (first_slot, base_word))) = placed else {
                return Err(DetailedFailure {
                    bank_type: tid,
                    segments: segments.clone(),
                });
            };
            // Virtual slots -> physical ports (mod P_t), deduplicated.
            let mut ports: Vec<u32> = (first_slot..first_slot + spec.ep)
                .map(|v| v % bank.ports)
                .collect();
            ports.sort_unstable();
            ports.dedup();
            mapping.fragments.push(Fragment {
                segment: spec.segment,
                bank_type: tid,
                instance,
                ports,
                config: spec.config,
                base_word,
                used_depth: spec.used_depth,
                reserved_depth: spec.reserved_depth,
                bit_offset: spec.bit_offset,
                word_offset: spec.word_offset,
            });
        }
    }
    Ok(mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::validate_detailed_policy;
    use gmm_arch::{BankType, Placement, RamConfig};
    use gmm_design::DesignBuilder;

    /// A board too port-poor for the base model: 1 single-port SRAM for 2
    /// segments.
    fn tight_world() -> (Design, Board) {
        let mut b = DesignBuilder::new("tight");
        b.segment("a", 100, 8).unwrap();
        b.segment("c", 100, 8).unwrap();
        let design = b.build().unwrap();
        let board = Board::new(
            "tiny",
            vec![BankType::new(
                "sram",
                1,
                1,
                vec![RamConfig::new(4096, 8)],
                2,
                2,
                Placement::DirectOffChip,
            )
            .unwrap()],
        )
        .unwrap();
        (design, board)
    }

    fn solve(
        design: &Design,
        board: &Board,
        arb: &ArbitrationOptions,
    ) -> Result<ArbitratedAssignment, MapError> {
        let pre = PreTable::build(design, board);
        let matrix = CostMatrix::build(design, board, &pre);
        solve_global_arbitrated(
            design,
            board,
            &pre,
            &matrix,
            &CostWeights::default(),
            &SolverBackend::default(),
            arb,
        )
    }

    #[test]
    fn base_model_infeasible_arbitration_feasible() {
        let (design, board) = tight_world();
        // Base model: 2 segments, 1 port -> infeasible.
        let pre = PreTable::build(&design, &board);
        let matrix = CostMatrix::build(&design, &board, &pre);
        let base = crate::global::solve_global(
            &design,
            &board,
            &pre,
            &matrix,
            &CostWeights::default(),
            &SolverBackend::default(),
            false,
            &[],
        );
        assert!(matches!(base, Err(MapError::Infeasible)));

        // Arbitrated: feasible with one oversubscribed port.
        let arb = ArbitrationOptions::default();
        let a = solve(&design, &board, &arb).unwrap();
        assert_eq!(a.overflow, vec![1]);
        assert_eq!(a.penalty_paid, arb.penalty_per_port);

        let detailed = map_detailed_arbitrated(&design, &board, &a.global, &arb).unwrap();
        let strict = validate_detailed_policy(
            &design,
            &board,
            &detailed,
            crate::mapping::ValidationPolicy::default(),
        );
        assert!(
            strict.iter().any(|v| matches!(v, crate::mapping::Violation::PortShared { .. })),
            "sharing must be visible to the strict policy"
        );
        let relaxed = validate_detailed_policy(&design, &board, &detailed, arb.policy());
        assert!(relaxed.is_empty(), "{relaxed:?}");
    }

    #[test]
    fn no_penalty_when_ports_suffice() {
        let mut b = DesignBuilder::new("loose");
        b.segment("only", 64, 8).unwrap();
        let design = b.build().unwrap();
        let board = tight_world().1;
        let a = solve(&design, &board, &ArbitrationOptions::default()).unwrap();
        assert_eq!(a.overflow, vec![0]);
        assert_eq!(a.penalty_paid, 0.0);
    }

    #[test]
    fn penalty_steers_away_from_sharing() {
        // Two banks: a fast single-port SRAM and a slow DRAM with spare
        // ports. With a huge penalty, the second segment must take the
        // slow bank instead of sharing the fast port.
        let mut b = DesignBuilder::new("steer");
        b.segment("a", 100, 8).unwrap();
        b.segment("c", 100, 8).unwrap();
        let design = b.build().unwrap();
        let board = Board::new(
            "two",
            vec![
                BankType::new(
                    "fast",
                    1,
                    1,
                    vec![RamConfig::new(4096, 8)],
                    1,
                    1,
                    Placement::DirectOffChip,
                )
                .unwrap(),
                BankType::new(
                    "slow",
                    2,
                    1,
                    vec![RamConfig::new(4096, 8)],
                    6,
                    6,
                    Placement::IndirectOffChip { hops: 2 },
                )
                .unwrap(),
            ],
        )
        .unwrap();
        let hi_penalty = ArbitrationOptions {
            sharing: 2,
            penalty_per_port: 1e7,
        };
        let a = solve(&design, &board, &hi_penalty).unwrap();
        assert_eq!(a.overflow, vec![0, 0], "penalty too costly to share");
        let types: Vec<usize> = a.global.type_of.iter().map(|t| t.0).collect();
        assert!(types.contains(&0) && types.contains(&1));

        // With a tiny penalty, both pile onto the fast bank's port.
        let lo_penalty = ArbitrationOptions {
            sharing: 2,
            penalty_per_port: 0.01,
        };
        let a = solve(&design, &board, &lo_penalty).unwrap();
        assert_eq!(a.global.type_of[0].0, 0);
        assert_eq!(a.global.type_of[1].0, 0);
        assert_eq!(a.overflow[0], 1);
    }

}
