//! Mapping result types shared by the global, detailed, and complete
//! mappers, plus the validator enforcing the paper's structural invariants.

use crate::cost::CostBreakdown;
use crate::preprocess::round_pow2;
use gmm_arch::{BankTypeId, Board, RamConfig};
use gmm_design::{Design, SegmentId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Output of global mapping: each segment's bank type (`Z_dt`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalAssignment {
    /// `type_of[d]` = bank type of segment `d`.
    pub type_of: Vec<BankTypeId>,
    /// Cost breakdown of the assignment under the mapper's cost matrix.
    pub cost: CostBreakdown,
}

impl GlobalAssignment {
    /// Segments assigned to each type.
    pub fn segments_by_type(&self, num_types: usize) -> Vec<Vec<SegmentId>> {
        let mut by_type = vec![Vec::new(); num_types];
        for (d, t) in self.type_of.iter().enumerate() {
            by_type[t.0].push(SegmentId(d));
        }
        by_type
    }
}

/// One placed fragment of a segment: a rectangle of words living on a
/// single instance behind a set of ports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fragment {
    pub segment: SegmentId,
    pub bank_type: BankTypeId,
    /// Instance index within the bank type (`i` of `X_dtip`).
    pub instance: u32,
    /// Ports of the instance dedicated to this fragment (`p` of `X_dtip`).
    pub ports: Vec<u32>,
    /// Port configuration selected for this fragment (`Y_tipc`).
    pub config: RamConfig,
    /// First word (in `config` address space) of the fragment's reserved
    /// region.
    pub base_word: u32,
    /// Words actually holding data.
    pub used_depth: u32,
    /// Words reserved (power-of-two rounding of `used_depth`).
    pub reserved_depth: u32,
    /// Bit columns of the logical segment this fragment stores
    /// (`bit_offset .. bit_offset + config.width`, clipped to the segment).
    pub bit_offset: u32,
    /// First logical word of the segment stored here.
    pub word_offset: u32,
}

impl Fragment {
    /// Reserved footprint in physical bits.
    #[inline]
    pub fn reserved_bits(&self) -> u64 {
        self.reserved_depth as u64 * self.config.width as u64
    }

    /// Physical bit range `[start, end)` of the reserved region within the
    /// instance, under the standard linear aspect-ratio address map
    /// (word `w` at width `W` covers bits `w*W .. (w+1)*W`).
    #[inline]
    pub fn bit_range(&self) -> (u64, u64) {
        let start = self.base_word as u64 * self.config.width as u64;
        (start, start + self.reserved_bits())
    }
}

/// A complete detailed mapping: all fragments of all segments.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DetailedMapping {
    pub fragments: Vec<Fragment>,
}

impl DetailedMapping {
    /// Fragments of one segment.
    pub fn of_segment(&self, d: SegmentId) -> impl Iterator<Item = &Fragment> {
        self.fragments.iter().filter(move |f| f.segment == d)
    }

    /// Number of distinct instances a segment touches (its fragmentation).
    pub fn fragmentation(&self, d: SegmentId) -> usize {
        let mut set = std::collections::BTreeSet::new();
        for f in self.of_segment(d) {
            set.insert((f.bank_type, f.instance));
        }
        set.len()
    }

    /// Total instances used across the whole mapping.
    pub fn instances_used(&self) -> usize {
        let mut set = std::collections::BTreeSet::new();
        for f in &self.fragments {
            set.insert((f.bank_type, f.instance));
        }
        set.len()
    }
}

/// A violation found by [`validate_detailed`].
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A fragment references an instance or port that does not exist.
    BadReference(String),
    /// Two fragments of conflicting segments overlap in physical bits.
    Overlap {
        a: SegmentId,
        b: SegmentId,
        bank_type: BankTypeId,
        instance: u32,
    },
    /// A port serves two different segments (arbitration is out of scope,
    /// paper §6).
    PortShared {
        bank_type: BankTypeId,
        instance: u32,
        port: u32,
    },
    /// A fragment's base address is not aligned to its reserved
    /// power-of-two depth (would need an offset adder — Figure 3's no-adder
    /// guarantee).
    Misaligned(String),
    /// A segment's fragments do not cover all of its words and bits.
    IncompleteCoverage { segment: SegmentId, detail: String },
    /// A fragment uses a configuration the bank does not offer.
    BadConfig(String),
    /// Reserved region exceeds the instance capacity.
    CapacityExceeded {
        bank_type: BankTypeId,
        instance: u32,
    },
}

/// Validation policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationPolicy {
    /// Maximum distinct segments allowed per physical port. The paper's
    /// base model forbids arbitration (`1`, §6); the arbitration
    /// extension raises it.
    pub max_port_sharing: u32,
}

impl Default for ValidationPolicy {
    fn default() -> Self {
        ValidationPolicy {
            max_port_sharing: 1,
        }
    }
}

/// Validate a detailed mapping against the board, design, and conflict
/// relation under the paper's base policy (no port sharing). Returns
/// every violation found (empty = valid).
pub fn validate_detailed(
    design: &Design,
    board: &Board,
    mapping: &DetailedMapping,
) -> Vec<Violation> {
    validate_detailed_policy(design, board, mapping, ValidationPolicy::default())
}

/// Validate under an explicit policy (used by the arbitration extension).
pub fn validate_detailed_policy(
    design: &Design,
    board: &Board,
    mapping: &DetailedMapping,
    policy: ValidationPolicy,
) -> Vec<Violation> {
    let mut out = Vec::new();

    // Per-fragment structural checks.
    for f in &mapping.fragments {
        if f.bank_type.0 >= board.num_types() {
            out.push(Violation::BadReference(format!(
                "fragment references bank type {}",
                f.bank_type.0
            )));
            continue;
        }
        let bank = board.bank(f.bank_type);
        if f.instance >= bank.instances {
            out.push(Violation::BadReference(format!(
                "instance {} of type `{}` (has {})",
                f.instance, bank.name, bank.instances
            )));
        }
        for &p in &f.ports {
            if p >= bank.ports {
                out.push(Violation::BadReference(format!(
                    "port {} of type `{}` (has {})",
                    p, bank.name, bank.ports
                )));
            }
        }
        if !bank.configs.contains(&f.config) {
            out.push(Violation::BadConfig(format!(
                "config {} not offered by `{}`",
                f.config, bank.name
            )));
        }
        if f.reserved_depth != round_pow2(f.used_depth.max(1)) {
            out.push(Violation::Misaligned(format!(
                "fragment of segment {} reserves {} words for {} used",
                f.segment.0, f.reserved_depth, f.used_depth
            )));
        }
        if f.reserved_depth > 0 && f.base_word % f.reserved_depth != 0 {
            out.push(Violation::Misaligned(format!(
                "segment {} fragment base {} not a multiple of {}",
                f.segment.0, f.base_word, f.reserved_depth
            )));
        }
        let (_, end) = f.bit_range();
        if end > bank.capacity_bits() {
            out.push(Violation::CapacityExceeded {
                bank_type: f.bank_type,
                instance: f.instance,
            });
        }
    }

    // Port exclusivity and conflict-aware bit overlap, per instance.
    let mut by_instance: HashMap<(BankTypeId, u32), Vec<&Fragment>> = HashMap::new();
    for f in &mapping.fragments {
        by_instance
            .entry((f.bank_type, f.instance))
            .or_default()
            .push(f);
    }
    for ((t, i), frags) in &by_instance {
        // Ports: at most `max_port_sharing` distinct segments per port.
        let mut port_owners: HashMap<u32, std::collections::BTreeSet<SegmentId>> = HashMap::new();
        for f in frags {
            for &p in &f.ports {
                port_owners.entry(p).or_default().insert(f.segment);
            }
        }
        for (&p, owners) in &port_owners {
            if owners.len() as u32 > policy.max_port_sharing {
                out.push(Violation::PortShared {
                    bank_type: *t,
                    instance: *i,
                    port: p,
                });
            }
        }
        // Bits: conflicting segments may not overlap.
        for (a_idx, fa) in frags.iter().enumerate() {
            for fb in frags.iter().skip(a_idx + 1) {
                if fa.segment == fb.segment {
                    // Same segment: fragments must still be disjoint
                    // (mutual exclusivity of Figure 3).
                    let (s1, e1) = fa.bit_range();
                    let (s2, e2) = fb.bit_range();
                    if s1 < e2 && s2 < e1 {
                        out.push(Violation::Overlap {
                            a: fa.segment,
                            b: fb.segment,
                            bank_type: *t,
                            instance: *i,
                        });
                    }
                    continue;
                }
                if design.conflicts().conflicts(fa.segment, fb.segment) {
                    let (s1, e1) = fa.bit_range();
                    let (s2, e2) = fb.bit_range();
                    if s1 < e2 && s2 < e1 {
                        out.push(Violation::Overlap {
                            a: fa.segment,
                            b: fb.segment,
                            bank_type: *t,
                            instance: *i,
                        });
                    }
                }
            }
        }
    }

    // Coverage: every word and bit of each segment stored exactly once.
    for (d, seg) in design.iter() {
        // Collect covered (word range x bit range) rectangles.
        let mut covered: Vec<(u32, u32, u32, u32)> = Vec::new(); // (w0, w1, b0, b1)
        for f in mapping.of_segment(d) {
            let w1 = f.word_offset + f.used_depth;
            let b1 = (f.bit_offset + f.config.width).min(seg.width);
            covered.push((f.word_offset, w1, f.bit_offset, b1));
        }
        if covered.is_empty() {
            out.push(Violation::IncompleteCoverage {
                segment: d,
                detail: "no fragments".into(),
            });
            continue;
        }
        // Exact-cover check by area + no internal overlap.
        let area: u64 = covered
            .iter()
            .map(|&(w0, w1, b0, b1)| (w1 - w0) as u64 * (b1.saturating_sub(b0)) as u64)
            .sum();
        let expect = seg.depth as u64 * seg.width as u64;
        if area != expect {
            out.push(Violation::IncompleteCoverage {
                segment: d,
                detail: format!("covered area {area} != segment bits {expect}"),
            });
            continue;
        }
        let mut overlap = false;
        for (i, &(w0, w1, b0, b1)) in covered.iter().enumerate() {
            if w1 > seg.depth || b1 > seg.width {
                out.push(Violation::IncompleteCoverage {
                    segment: d,
                    detail: format!("fragment rectangle ({w0},{w1},{b0},{b1}) exceeds segment"),
                });
            }
            for &(v0, v1, c0, c1) in covered.iter().skip(i + 1) {
                if w0 < v1 && v0 < w1 && b0 < c1 && c0 < b1 {
                    overlap = true;
                }
            }
        }
        if overlap {
            out.push(Violation::IncompleteCoverage {
                segment: d,
                detail: "fragments overlap within the segment".into(),
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmm_arch::{BankType, Placement};
    use gmm_design::DesignBuilder;

    fn small_world() -> (Design, Board) {
        let mut b = DesignBuilder::new("d");
        b.segment("s", 16, 8).unwrap();
        let design = b.build().unwrap();
        let board = Board::new(
            "b",
            vec![BankType::new(
                "ram",
                2,
                2,
                vec![RamConfig::new(128, 1), RamConfig::new(16, 8)],
                1,
                1,
                Placement::OnChip,
            )
            .unwrap()],
        )
        .unwrap();
        (design, board)
    }

    fn whole_segment_fragment() -> Fragment {
        Fragment {
            segment: SegmentId(0),
            bank_type: BankTypeId(0),
            instance: 0,
            ports: vec![0, 1],
            config: RamConfig::new(16, 8),
            base_word: 0,
            used_depth: 16,
            reserved_depth: 16,
            bit_offset: 0,
            word_offset: 0,
        }
    }

    #[test]
    fn valid_whole_segment_mapping() {
        let (design, board) = small_world();
        let mapping = DetailedMapping {
            fragments: vec![whole_segment_fragment()],
        };
        assert!(validate_detailed(&design, &board, &mapping).is_empty());
    }

    #[test]
    fn detects_missing_coverage() {
        let (design, board) = small_world();
        let mut f = whole_segment_fragment();
        f.used_depth = 8;
        f.reserved_depth = 8;
        let mapping = DetailedMapping { fragments: vec![f] };
        let v = validate_detailed(&design, &board, &mapping);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::IncompleteCoverage { .. })));
    }

    #[test]
    fn detects_misalignment() {
        let (design, board) = small_world();
        let mut f = whole_segment_fragment();
        f.base_word = 3; // not a multiple of 16
        let mapping = DetailedMapping { fragments: vec![f] };
        let v = validate_detailed(&design, &board, &mapping);
        assert!(v.iter().any(|x| matches!(x, Violation::Misaligned(_))));
    }

    #[test]
    fn detects_bad_references() {
        let (design, board) = small_world();
        let mut f = whole_segment_fragment();
        f.instance = 9;
        f.ports = vec![7];
        let mapping = DetailedMapping { fragments: vec![f] };
        let v = validate_detailed(&design, &board, &mapping);
        assert!(v.iter().filter(|x| matches!(x, Violation::BadReference(_))).count() >= 2);
    }

    #[test]
    fn detects_port_sharing_between_segments() {
        let mut b = DesignBuilder::new("d");
        b.segment("s1", 8, 8).unwrap();
        b.segment("s2", 8, 8).unwrap();
        let design = b.build().unwrap();
        let board = small_world().1;
        let mk = |seg: usize, port: u32, base: u32| Fragment {
            segment: SegmentId(seg),
            bank_type: BankTypeId(0),
            instance: 0,
            ports: vec![port],
            config: RamConfig::new(16, 8),
            base_word: base,
            used_depth: 8,
            reserved_depth: 8,
            bit_offset: 0,
            word_offset: 0,
        };
        let mapping = DetailedMapping {
            fragments: vec![mk(0, 0, 0), mk(1, 0, 8)],
        };
        let v = validate_detailed(&design, &board, &mapping);
        assert!(v.iter().any(|x| matches!(x, Violation::PortShared { .. })));
    }

    #[test]
    fn detects_conflicting_overlap() {
        let mut b = DesignBuilder::new("d");
        b.segment("s1", 8, 8).unwrap();
        b.segment("s2", 8, 8).unwrap();
        let design = b.build().unwrap(); // all-conflict default
        let board = small_world().1;
        let mk = |seg: usize, port: u32| Fragment {
            segment: SegmentId(seg),
            bank_type: BankTypeId(0),
            instance: 0,
            ports: vec![port],
            config: RamConfig::new(16, 8),
            base_word: 0, // same region!
            used_depth: 8,
            reserved_depth: 8,
            bit_offset: 0,
            word_offset: 0,
        };
        let mapping = DetailedMapping {
            fragments: vec![mk(0, 0), mk(1, 1)],
        };
        let v = validate_detailed(&design, &board, &mapping);
        assert!(v.iter().any(|x| matches!(x, Violation::Overlap { .. })));
    }

    #[test]
    fn non_conflicting_segments_may_overlap() {
        use gmm_design::Lifetime;
        let mut b = DesignBuilder::new("d");
        let s1 = b.segment("s1", 8, 8).unwrap();
        let s2 = b.segment("s2", 8, 8).unwrap();
        b.lifetime(s1, Lifetime::new(0, 5).unwrap());
        b.lifetime(s2, Lifetime::new(5, 9).unwrap());
        let design = b.build().unwrap();
        let board = small_world().1;
        let mk = |seg: usize, port: u32| Fragment {
            segment: SegmentId(seg),
            bank_type: BankTypeId(0),
            instance: 0,
            ports: vec![port],
            config: RamConfig::new(16, 8),
            base_word: 0,
            used_depth: 8,
            reserved_depth: 8,
            bit_offset: 0,
            word_offset: 0,
        };
        let mapping = DetailedMapping {
            fragments: vec![mk(0, 0), mk(1, 1)],
        };
        let v = validate_detailed(&design, &board, &mapping);
        assert!(
            !v.iter().any(|x| matches!(x, Violation::Overlap { .. })),
            "disjoint lifetimes may share storage: {v:?}"
        );
    }

    #[test]
    fn fragmentation_counts_instances() {
        let mapping = DetailedMapping {
            fragments: vec![
                whole_segment_fragment(),
                Fragment {
                    instance: 1,
                    ..whole_segment_fragment()
                },
            ],
        };
        assert_eq!(mapping.fragmentation(SegmentId(0)), 2);
        assert_eq!(mapping.instances_used(), 2);
    }
}
