//! Multi-processing-unit extension (paper §6, listed as ongoing work).
//!
//! The base model assumes one processing unit, "all logic areas …
//! equidistant from each physical bank". With several PUs, the pin
//! distance between a bank type and the logic *using* a segment depends
//! on which PU owns that segment. This module generalizes the §4.1.3 pin
//! terms: segment `d` owned by PU `u` pays `pins(u, t)` instead of `T_t`,
//! everything else (pre-processing, constraints, detailed mapping) is
//! unchanged — exactly the extension shape the paper sketches.

use crate::cost::CostMatrix;
#[cfg(test)]
use crate::cost::CostWeights;
use crate::global::MapError;
use crate::pipeline::{Mapper, MappingOutcome};
use crate::preprocess::PreTable;
use gmm_arch::{BankTypeId, Board};
use gmm_design::{Design, SegmentId};
use serde::{Deserialize, Serialize};

/// Index of a processing unit on the board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PuId(pub usize);

/// A board with several processing units at different pin distances from
/// each bank type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiPuBoard {
    pub board: Board,
    /// `pins[u][t]`: pins traversed between PU `u` and bank type `t`.
    pins: Vec<Vec<u32>>,
}

/// Errors building a multi-PU board.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiPuError {
    /// At least one PU is required.
    NoPus,
    /// Each PU needs a pin entry per bank type.
    BadMatrix { pu: usize, got: usize, want: usize },
}

impl std::fmt::Display for MultiPuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiPuError::NoPus => write!(f, "multi-PU board needs at least one PU"),
            MultiPuError::BadMatrix { pu, got, want } => {
                write!(f, "PU {pu} has {got} pin entries, board has {want} types")
            }
        }
    }
}

impl std::error::Error for MultiPuError {}

impl MultiPuBoard {
    /// Build from an explicit pin matrix `pins[u][t]`.
    pub fn new(board: Board, pins: Vec<Vec<u32>>) -> Result<Self, MultiPuError> {
        if pins.is_empty() {
            return Err(MultiPuError::NoPus);
        }
        for (u, row) in pins.iter().enumerate() {
            if row.len() != board.num_types() {
                return Err(MultiPuError::BadMatrix {
                    pu: u,
                    got: row.len(),
                    want: board.num_types(),
                });
            }
        }
        Ok(MultiPuBoard { board, pins })
    }

    /// The single-PU degenerate case: every distance is the bank's own
    /// `T_t` (the base model).
    pub fn single(board: Board) -> Self {
        let row: Vec<u32> = board.bank_types().iter().map(|b| b.pins_traversed()).collect();
        MultiPuBoard {
            board,
            pins: vec![row],
        }
    }

    /// A symmetric `n`-PU board where every PU sees the bank's base pin
    /// count plus `hop_penalty * |u - home(t)|`, with bank types assigned
    /// round-robin home PUs — a simple linear-array floorplan model.
    pub fn linear_array(board: Board, n: usize, hop_penalty: u32) -> Result<Self, MultiPuError> {
        if n == 0 {
            return Err(MultiPuError::NoPus);
        }
        let pins = (0..n)
            .map(|u| {
                board
                    .iter()
                    .map(|(t, bank)| {
                        let home = t.0 % n;
                        let dist = (u as i64 - home as i64).unsigned_abs() as u32;
                        bank.pins_traversed() + hop_penalty * dist
                    })
                    .collect()
            })
            .collect();
        Ok(MultiPuBoard { board, pins })
    }

    #[inline]
    pub fn num_pus(&self) -> usize {
        self.pins.len()
    }

    /// Pins traversed between PU `u` and bank type `t`.
    #[inline]
    pub fn pins(&self, u: PuId, t: BankTypeId) -> u32 {
        self.pins[u.0][t.0]
    }
}

/// Segment → owning-PU assignment (who accesses the segment).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PuOwnership(pub Vec<PuId>);

impl PuOwnership {
    /// Round-robin ownership (a reasonable default when the real logic
    /// partition is unknown).
    pub fn round_robin(num_segments: usize, num_pus: usize) -> Self {
        PuOwnership((0..num_segments).map(|d| PuId(d % num_pus)).collect())
    }
}

/// Map a design on a multi-PU board: identical constraints, PU-aware pin
/// costs.
pub fn map_multi_pu(
    mapper: &Mapper,
    design: &Design,
    mpu: &MultiPuBoard,
    owner: &PuOwnership,
) -> Result<MappingOutcome, MapError> {
    assert_eq!(
        owner.0.len(),
        design.num_segments(),
        "one owning PU per segment"
    );
    let pre = PreTable::build(design, &mpu.board);
    let matrix = CostMatrix::build_with_pins(design, &mpu.board, &pre, |d: SegmentId, t| {
        mpu.pins(owner.0[d.0], t)
    });
    mapper.map_with(design, &mpu.board, &pre, &matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::MapperOptions;
    use gmm_arch::{BankType, Placement, RamConfig};
    use gmm_design::DesignBuilder;

    fn two_type_board() -> Board {
        Board::new(
            "mpu",
            vec![
                BankType::new(
                    "bankA",
                    4,
                    2,
                    vec![RamConfig::new(4096, 1), RamConfig::new(512, 8)],
                    1,
                    1,
                    Placement::OnChip,
                )
                .unwrap(),
                BankType::new(
                    "bankB",
                    4,
                    2,
                    vec![RamConfig::new(4096, 1), RamConfig::new(512, 8)],
                    1,
                    1,
                    Placement::OnChip,
                )
                .unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn matrix_validation() {
        let b = two_type_board();
        assert!(matches!(
            MultiPuBoard::new(b.clone(), vec![]),
            Err(MultiPuError::NoPus)
        ));
        assert!(matches!(
            MultiPuBoard::new(b.clone(), vec![vec![0]]),
            Err(MultiPuError::BadMatrix { .. })
        ));
        assert!(MultiPuBoard::new(b, vec![vec![0, 4], vec![4, 0]]).is_ok());
    }

    #[test]
    fn single_pu_matches_base_model() {
        let board = two_type_board();
        let mpu = MultiPuBoard::single(board.clone());
        assert_eq!(mpu.num_pus(), 1);
        assert_eq!(mpu.pins(PuId(0), BankTypeId(0)), 0);

        let mut b = DesignBuilder::new("d");
        for i in 0..4 {
            b.segment(format!("s{i}"), 200, 8).unwrap();
        }
        let design = b.build().unwrap();
        let mapper = Mapper::new(MapperOptions::new());
        let base = mapper.map(&design, &board).unwrap();
        let multi = map_multi_pu(
            &mapper,
            &design,
            &mpu,
            &PuOwnership::round_robin(4, 1),
        )
        .unwrap();
        let w = CostWeights::default();
        assert!((base.cost.weighted(&w) - multi.cost.weighted(&w)).abs() < 1e-9);
    }

    #[test]
    fn segments_gravitate_to_their_pu() {
        // Two identical bank types; PU0 is next to bankA, PU1 next to
        // bankB. Segments owned by PU0 must land on bankA and vice versa.
        let board = two_type_board();
        let mpu = MultiPuBoard::new(board, vec![vec![0, 6], vec![6, 0]]).unwrap();
        let mut b = DesignBuilder::new("d");
        for i in 0..6 {
            b.segment(format!("s{i}"), 200, 8).unwrap();
        }
        let design = b.build().unwrap();
        let owner = PuOwnership(vec![
            PuId(0),
            PuId(0),
            PuId(0),
            PuId(1),
            PuId(1),
            PuId(1),
        ]);
        let mapper = Mapper::new(MapperOptions::new());
        let out = map_multi_pu(&mapper, &design, &mpu, &owner).unwrap();
        for d in 0..6 {
            let expect = if d < 3 { 0 } else { 1 };
            assert_eq!(
                out.global.type_of[d].0, expect,
                "segment {d} should sit next to its PU"
            );
        }
    }

    #[test]
    fn linear_array_distances() {
        let board = two_type_board();
        let mpu = MultiPuBoard::linear_array(board, 3, 2).unwrap();
        assert_eq!(mpu.num_pus(), 3);
        // bankA home = PU0, bankB home = PU1.
        assert_eq!(mpu.pins(PuId(0), BankTypeId(0)), 0);
        assert_eq!(mpu.pins(PuId(2), BankTypeId(0)), 4);
        assert_eq!(mpu.pins(PuId(1), BankTypeId(1)), 0);
        assert_eq!(mpu.pins(PuId(0), BankTypeId(1)), 2);
    }

    #[test]
    fn ownership_round_robin() {
        let o = PuOwnership::round_robin(5, 2);
        assert_eq!(o.0, vec![PuId(0), PuId(1), PuId(0), PuId(1), PuId(0)]);
    }
}
