//! The end-to-end mapping pipeline: pre-process → global ILP → detailed
//! mapping, with the paper's retry loop ("the global and detailed mappers
//! need to execute multiple times until a solution is found", §4.1) for
//! the rare ≥3-port packing failures.

use crate::complete::ModelStats;
use crate::cost::{CostBreakdown, CostMatrix, CostWeights};
use crate::detailed::map_detailed;
use crate::detailed_ilp::{map_detailed_ilp, DetailedIlpOptions};
use crate::global::{
    solve_global_hinted_with_stats, MapError, NoGood, SolveTelemetry, SolverBackend,
};
use crate::mapping::{validate_detailed, DetailedMapping, GlobalAssignment};
use crate::preprocess::PreTable;
use gmm_arch::Board;
use gmm_design::Design;
use gmm_ilp::control::SolveControl;
use gmm_ilp::error::{MipStatus, StopReason};
use std::time::{Duration, Instant};

/// Which detailed mapper runs after global mapping.
#[derive(Debug, Clone, Default)]
pub enum DetailedStrategy {
    /// The constructive Figure-2/Figure-3 packer (fast, the default).
    #[default]
    Constructive,
    /// The §4.2 ILP packer minimizing fragmentation, with constructive
    /// fallback.
    Ilp(DetailedIlpOptions),
}

/// Pipeline configuration.
///
/// `#[non_exhaustive]`: construct with [`MapperOptions::new`] (or
/// `Default`) and assign the fields you care about — new knobs are added
/// without a major break. Defaults:
///
/// | field | default |
/// |-------|---------|
/// | `weights` | paper's cost weights |
/// | `backend` | serial branch-and-bound, sparse-LU basis |
/// | `overlap_aware` | `false` |
/// | `detailed` | constructive packer |
/// | `max_retries` | 8 (via `new`; 0 means 1) |
/// | `deadline` | none |
/// | `node_budget` | none |
/// | `control` | no token, no observer |
/// | `warm_hint` | none |
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct MapperOptions {
    pub weights: CostWeights,
    pub backend: SolverBackend,
    /// Use lifetime-based capacity modification when lifetimes exist.
    pub overlap_aware: bool,
    pub detailed: DetailedStrategy,
    /// Retry budget for the global/detailed loop.
    pub max_retries: usize,
    /// Wall-clock budget over the *whole* pipeline run (all global ILP
    /// retries). The constructive detailed mapper is fast and runs to
    /// completion; the ILP detailed mapper honors the remaining budget
    /// per packing model and falls back to the constructive packer on
    /// expiry.
    pub deadline: Option<Duration>,
    /// Branch-and-bound node budget across all global solves.
    pub node_budget: Option<u64>,
    /// Cooperative cancellation + progress events, threaded into every
    /// ILP hot loop underneath this run.
    pub control: SolveControl,
    /// Warm-start hint: a sibling instance's global assignment
    /// (`warm_hint[d]` = bank type index of segment `d`), offered to the
    /// global ILP as an incumbent seed on every attempt. Validated (and
    /// silently dropped when it does not fit) by the solver — see
    /// [`crate::global::solve_global_hinted_with_stats`].
    pub warm_hint: Option<Vec<u32>>,
}

impl MapperOptions {
    pub fn new() -> Self {
        MapperOptions {
            max_retries: 8,
            ..Default::default()
        }
    }
}

/// Statistics of one pipeline run.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct MapStats {
    pub retries: usize,
    pub global_time: Duration,
    pub detailed_time: Duration,
    /// Branch-and-bound nodes across every global solve attempt.
    pub nodes_explored: u64,
    /// Simplex pivots across every global solve attempt.
    pub lp_iterations: u64,
    /// Nodes that accepted a parent warm-start basis (skipped phase 1).
    pub warm_started_nodes: u64,
    /// Basis refactorizations across every global solve attempt.
    pub refactorizations: u64,
    /// Worst eta-file fill-in any single node LP reached.
    pub eta_nnz_peak: u64,
    /// Global solve attempts whose warm-start hint was accepted as the
    /// starting incumbent.
    pub incumbent_seeded: u64,
    /// MIP status of the last global solve (`None` if none ran).
    pub global_status: Option<MipStatus>,
    /// What stopped the last global solve early, if anything.
    pub stop_reason: Option<StopReason>,
}

impl MapStats {
    fn absorb(&mut self, t: &SolveTelemetry) {
        self.nodes_explored += t.nodes_explored;
        self.lp_iterations += t.lp_iterations;
        self.warm_started_nodes += t.warm_started_nodes;
        self.refactorizations += t.refactorizations;
        self.eta_nnz_peak = self.eta_nnz_peak.max(t.eta_nnz_peak);
        self.incumbent_seeded += t.incumbent_seeded;
        self.global_status = t.status;
        self.stop_reason = t.stop_reason;
    }
}

/// A finished pipeline run with its statistics, whether or not it
/// produced a mapping. This is the facade-facing return shape: deadline
/// and cancellation terminations still carry timing and node counters.
#[derive(Debug)]
pub struct MapRun {
    pub result: Result<MappingOutcome, MapError>,
    /// Always populated, even when `result` is an error.
    pub stats: MapStats,
}

/// A finished mapping: the global type assignment, the concrete detailed
/// placement, and its cost.
#[derive(Debug, Clone)]
pub struct MappingOutcome {
    pub global: GlobalAssignment,
    pub detailed: DetailedMapping,
    pub cost: CostBreakdown,
    pub stats: MapStats,
}

/// The two-phase memory mapper.
#[derive(Debug, Clone, Default)]
pub struct Mapper {
    pub options: MapperOptions,
}

impl Mapper {
    pub fn new(options: MapperOptions) -> Self {
        Mapper { options }
    }

    /// Run the full global → detailed pipeline.
    pub fn map(&self, design: &Design, board: &Board) -> Result<MappingOutcome, MapError> {
        self.map_run(design, board).result
    }

    /// Run with pre-built tables (avoids recomputation in benchmarks).
    pub fn map_with(
        &self,
        design: &Design,
        board: &Board,
        pre: &PreTable,
        matrix: &CostMatrix,
    ) -> Result<MappingOutcome, MapError> {
        self.map_run_with(design, board, pre, matrix).result
    }

    /// Like [`Mapper::map`], but always returns the run's [`MapStats`] —
    /// including on deadline, cancellation, and infeasibility.
    pub fn map_run(&self, design: &Design, board: &Board) -> MapRun {
        self.options.control.phase("preprocess");
        let pre = PreTable::build(design, board);
        let matrix = CostMatrix::build(design, board, &pre);
        self.map_run_with(design, board, &pre, &matrix)
    }

    /// [`Mapper::map_with`] with stats on every exit path.
    pub fn map_run_with(
        &self,
        design: &Design,
        board: &Board,
        pre: &PreTable,
        matrix: &CostMatrix,
    ) -> MapRun {
        let start = Instant::now();
        let deadline = self.options.deadline.map(|d| start + d);
        let mut no_goods: Vec<NoGood> = Vec::new();
        let mut stats = MapStats::default();
        let max_retries = self.options.max_retries.max(1);
        let control = &self.options.control;

        for attempt in 0..max_retries {
            control.phase(if attempt == 0 { "global" } else { "retry" });
            if control.is_cancelled() {
                return MapRun {
                    result: Err(MapError::Cancelled),
                    stats,
                };
            }
            // Tighten the engine limits to what remains of the run's
            // budget: each retry gets strictly less time/fewer nodes.
            let mut backend = self.options.backend.clone();
            let time_left = match deadline {
                Some(dl) => {
                    let now = Instant::now();
                    if now >= dl {
                        return MapRun {
                            result: Err(MapError::Deadline),
                            stats,
                        };
                    }
                    Some(dl - now)
                }
                None => None,
            };
            let nodes_left = self
                .options
                .node_budget
                .map(|b| b.saturating_sub(stats.nodes_explored).max(1));
            backend.apply_control(time_left, nodes_left, control);

            let t0 = Instant::now();
            let solved = solve_global_hinted_with_stats(
                design,
                board,
                pre,
                matrix,
                &self.options.weights,
                &backend,
                self.options.overlap_aware,
                &no_goods,
                self.options.warm_hint.as_deref(),
            );
            stats.global_time += t0.elapsed();
            let global = match solved {
                Ok((global, telemetry)) => {
                    stats.absorb(&telemetry);
                    global
                }
                Err((e, telemetry)) => {
                    stats.absorb(&telemetry);
                    return MapRun {
                        result: Err(e),
                        stats,
                    };
                }
            };
            // Node budget exhausted without a usable assignment never
            // reaches here; exhausted *with* one proceeds to detailed.

            control.phase("detailed");
            let t1 = Instant::now();
            let detailed_result = match &self.options.detailed {
                DetailedStrategy::Constructive => map_detailed(design, board, pre, &global),
                DetailedStrategy::Ilp(opts) => {
                    // The packing ILPs honor the session's absolute
                    // deadline and cancel token; expiry or cancellation
                    // falls back to the constructive packer, so the
                    // phase still terminates promptly and validly.
                    let mut opts = opts.clone();
                    opts.deadline = match (opts.deadline, deadline) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                    if opts.control.cancel.is_none() {
                        opts.control.cancel = control.cancel.clone();
                    }
                    if opts.control.observer.is_none() {
                        opts.control.observer = control.observer.clone();
                    }
                    map_detailed_ilp(design, board, pre, &global, &opts)
                }
            };
            stats.detailed_time += t1.elapsed();

            match detailed_result {
                Ok(detailed) => {
                    stats.retries = attempt;
                    debug_assert!(
                        validate_detailed(design, board, &detailed).is_empty(),
                        "detailed mapper produced an invalid mapping"
                    );
                    // A deadline or cancel that fired during an ILP
                    // detailed phase made this packing a function of
                    // wall-clock timing (truncated incumbent or
                    // deadline-induced constructive fallback). Surface
                    // it in stop_reason so the facade classifies the
                    // run DeadlineExceeded/Cancelled and the service
                    // never caches a nondeterministic payload. The
                    // constructive strategy is a pure function of the
                    // instance, so it needs no such guard.
                    if matches!(self.options.detailed, DetailedStrategy::Ilp(_))
                        && stats.stop_reason.is_none()
                    {
                        if control.is_cancelled() {
                            stats.stop_reason = Some(StopReason::Cancelled);
                        } else if deadline.is_some_and(|dl| Instant::now() >= dl) {
                            stats.stop_reason = Some(StopReason::Deadline);
                        }
                    }
                    let cost = global.cost;
                    let stats_clone = stats.clone();
                    return MapRun {
                        result: Ok(MappingOutcome {
                            global,
                            detailed,
                            cost,
                            stats,
                        }),
                        stats: stats_clone,
                    };
                }
                Err(failure) => {
                    // Paper §4.1: re-run global mapping with the failing
                    // combination excluded.
                    no_goods.push(NoGood {
                        bank_type: failure.bank_type,
                        segments: failure.segments,
                    });
                }
            }
        }
        MapRun {
            result: Err(MapError::DetailedFailed {
                retries: max_retries,
            }),
            stats,
        }
    }

    /// Run the **complete** one-step formulation on the same inputs
    /// (baseline for Table 3 comparisons).
    pub fn map_complete(
        &self,
        design: &Design,
        board: &Board,
    ) -> Result<(GlobalAssignment, ModelStats), MapError> {
        self.map_complete_run(design, board)
            .map(|(assignment, stats, _)| (assignment, stats))
    }

    /// [`Mapper::map_complete`] plus the engine's [`SolveTelemetry`], so
    /// callers can tell a proven optimum from a limit-truncated
    /// incumbent.
    pub fn map_complete_run(
        &self,
        design: &Design,
        board: &Board,
    ) -> Result<(GlobalAssignment, ModelStats, SolveTelemetry), MapError> {
        let pre = PreTable::build(design, board);
        let matrix = CostMatrix::build(design, board, &pre);
        crate::complete::solve_complete_with_stats(
            design,
            board,
            &pre,
            &matrix,
            &self.options.weights,
            &self.options.backend,
            self.options.overlap_aware,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmm_arch::{BankType, Placement, RamConfig};
    use gmm_design::DesignBuilder;

    fn board() -> Board {
        Board::new(
            "b",
            vec![
                BankType::new(
                    "onchip",
                    8,
                    2,
                    vec![
                        RamConfig::new(4096, 1),
                        RamConfig::new(2048, 2),
                        RamConfig::new(1024, 4),
                        RamConfig::new(512, 8),
                        RamConfig::new(256, 16),
                    ],
                    1,
                    1,
                    Placement::OnChip,
                )
                .unwrap(),
                gmm_arch::devices::off_chip::zbt_sram("sram", 4, 65536, 32),
            ],
        )
        .unwrap()
    }

    fn design(n: usize) -> Design {
        let mut b = DesignBuilder::new("d");
        for i in 0..n {
            b.segment(format!("s{i}"), 50 + 37 * i as u32, 1 + (i % 9) as u32)
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn pipeline_end_to_end() {
        let mapper = Mapper::new(MapperOptions::new());
        let out = mapper.map(&design(8), &board()).unwrap();
        assert_eq!(out.global.type_of.len(), 8);
        assert!(!out.detailed.fragments.is_empty());
        assert_eq!(out.stats.retries, 0, "dual-port boards never retry");
        let violations = validate_detailed(&design(8), &board(), &out.detailed);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn pipeline_with_ilp_detailed() {
        let mut opts = MapperOptions::new();
        opts.detailed = DetailedStrategy::Ilp(DetailedIlpOptions::default());
        let mapper = Mapper::new(opts);
        let out = mapper.map(&design(6), &board()).unwrap();
        let violations = validate_detailed(&design(6), &board(), &out.detailed);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn pipeline_retry_on_three_port_bank() {
        // A 3-port bank where the Figure-3 accounting admits assignments
        // the packer cannot realize: the pipeline must retry with no-goods
        // and land on a feasible split (here: spill to the second type).
        let tri = BankType::new(
            "tri",
            2,
            3,
            vec![RamConfig::new(16, 8)],
            1,
            1,
            Placement::OnChip,
        )
        .unwrap();
        let spill = gmm_arch::devices::off_chip::zbt_sram("spill", 4, 65536, 32);
        let board = Board::new("tri-board", vec![tri, spill]).unwrap();
        // Three 8x8 segments: EP=2 each on the tri bank (total 6 = port
        // budget), but three EP-2 fragments cannot pack into two 3-port
        // instances.
        let mut b = DesignBuilder::new("d");
        for i in 0..3 {
            b.segment(format!("s{i}"), 8, 8).unwrap();
        }
        let design = b.build().unwrap();
        let mapper = Mapper::new(MapperOptions::new());
        let out = mapper.map(&design, &board).unwrap();
        assert!(out.stats.retries >= 1, "must have retried");
        let violations = validate_detailed(&design, &board, &out.detailed);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn complete_pipeline_agrees() {
        let mapper = Mapper::new(MapperOptions::new());
        let d = design(5);
        let two = mapper.map(&d, &board()).unwrap();
        let (one, _) = mapper.map_complete(&d, &board()).unwrap();
        let w = CostWeights::default();
        assert!(
            (two.cost.weighted(&w) - one.cost.weighted(&w)).abs() < 1e-6,
            "two-phase {} vs complete {}",
            two.cost.weighted(&w),
            one.cost.weighted(&w)
        );
    }
}
