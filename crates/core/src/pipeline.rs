//! The end-to-end mapping pipeline: pre-process → global ILP → detailed
//! mapping, with the paper's retry loop ("the global and detailed mappers
//! need to execute multiple times until a solution is found", §4.1) for
//! the rare ≥3-port packing failures.

use crate::complete::{solve_complete, ModelStats};
use crate::cost::{CostBreakdown, CostMatrix, CostWeights};
use crate::detailed::map_detailed;
use crate::detailed_ilp::{map_detailed_ilp, DetailedIlpOptions};
use crate::global::{solve_global, MapError, NoGood, SolverBackend};
use crate::mapping::{validate_detailed, DetailedMapping, GlobalAssignment};
use crate::preprocess::PreTable;
use gmm_arch::Board;
use gmm_design::Design;
use std::time::{Duration, Instant};

/// Which detailed mapper runs after global mapping.
#[derive(Debug, Clone, Default)]
pub enum DetailedStrategy {
    /// The constructive Figure-2/Figure-3 packer (fast, the default).
    #[default]
    Constructive,
    /// The §4.2 ILP packer minimizing fragmentation, with constructive
    /// fallback.
    Ilp(DetailedIlpOptions),
}

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct MapperOptions {
    pub weights: CostWeights,
    pub backend: SolverBackend,
    /// Use lifetime-based capacity modification when lifetimes exist.
    pub overlap_aware: bool,
    pub detailed: DetailedStrategy,
    /// Retry budget for the global/detailed loop.
    pub max_retries: usize,
}

impl MapperOptions {
    pub fn new() -> Self {
        MapperOptions {
            max_retries: 8,
            ..Default::default()
        }
    }
}

/// Statistics of one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct MapStats {
    pub retries: usize,
    pub global_time: Duration,
    pub detailed_time: Duration,
}

/// A finished mapping: the global type assignment, the concrete detailed
/// placement, and its cost.
#[derive(Debug, Clone)]
pub struct MappingOutcome {
    pub global: GlobalAssignment,
    pub detailed: DetailedMapping,
    pub cost: CostBreakdown,
    pub stats: MapStats,
}

/// The two-phase memory mapper.
#[derive(Debug, Clone, Default)]
pub struct Mapper {
    pub options: MapperOptions,
}

impl Mapper {
    pub fn new(options: MapperOptions) -> Self {
        Mapper { options }
    }

    /// Run the full global → detailed pipeline.
    pub fn map(&self, design: &Design, board: &Board) -> Result<MappingOutcome, MapError> {
        let pre = PreTable::build(design, board);
        let matrix = CostMatrix::build(design, board, &pre);
        self.map_with(design, board, &pre, &matrix)
    }

    /// Run with pre-built tables (avoids recomputation in benchmarks).
    pub fn map_with(
        &self,
        design: &Design,
        board: &Board,
        pre: &PreTable,
        matrix: &CostMatrix,
    ) -> Result<MappingOutcome, MapError> {
        let mut no_goods: Vec<NoGood> = Vec::new();
        let mut stats = MapStats::default();
        let max_retries = self.options.max_retries.max(1);

        for attempt in 0..max_retries {
            let t0 = Instant::now();
            let global = solve_global(
                design,
                board,
                pre,
                matrix,
                &self.options.weights,
                &self.options.backend,
                self.options.overlap_aware,
                &no_goods,
            )?;
            stats.global_time += t0.elapsed();

            let t1 = Instant::now();
            let detailed_result = match &self.options.detailed {
                DetailedStrategy::Constructive => map_detailed(design, board, pre, &global),
                DetailedStrategy::Ilp(opts) => map_detailed_ilp(design, board, pre, &global, opts),
            };
            stats.detailed_time += t1.elapsed();

            match detailed_result {
                Ok(detailed) => {
                    stats.retries = attempt;
                    debug_assert!(
                        validate_detailed(design, board, &detailed).is_empty(),
                        "detailed mapper produced an invalid mapping"
                    );
                    let cost = global.cost;
                    return Ok(MappingOutcome {
                        global,
                        detailed,
                        cost,
                        stats,
                    });
                }
                Err(failure) => {
                    // Paper §4.1: re-run global mapping with the failing
                    // combination excluded.
                    no_goods.push(NoGood {
                        bank_type: failure.bank_type,
                        segments: failure.segments,
                    });
                }
            }
        }
        Err(MapError::DetailedFailed {
            retries: max_retries,
        })
    }

    /// Run the **complete** one-step formulation on the same inputs
    /// (baseline for Table 3 comparisons).
    pub fn map_complete(
        &self,
        design: &Design,
        board: &Board,
    ) -> Result<(GlobalAssignment, ModelStats), MapError> {
        let pre = PreTable::build(design, board);
        let matrix = CostMatrix::build(design, board, &pre);
        solve_complete(
            design,
            board,
            &pre,
            &matrix,
            &self.options.weights,
            &self.options.backend,
            self.options.overlap_aware,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmm_arch::{BankType, Placement, RamConfig};
    use gmm_design::DesignBuilder;

    fn board() -> Board {
        Board::new(
            "b",
            vec![
                BankType::new(
                    "onchip",
                    8,
                    2,
                    vec![
                        RamConfig::new(4096, 1),
                        RamConfig::new(2048, 2),
                        RamConfig::new(1024, 4),
                        RamConfig::new(512, 8),
                        RamConfig::new(256, 16),
                    ],
                    1,
                    1,
                    Placement::OnChip,
                )
                .unwrap(),
                gmm_arch::devices::off_chip::zbt_sram("sram", 4, 65536, 32),
            ],
        )
        .unwrap()
    }

    fn design(n: usize) -> Design {
        let mut b = DesignBuilder::new("d");
        for i in 0..n {
            b.segment(format!("s{i}"), 50 + 37 * i as u32, 1 + (i % 9) as u32)
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn pipeline_end_to_end() {
        let mapper = Mapper::new(MapperOptions::new());
        let out = mapper.map(&design(8), &board()).unwrap();
        assert_eq!(out.global.type_of.len(), 8);
        assert!(!out.detailed.fragments.is_empty());
        assert_eq!(out.stats.retries, 0, "dual-port boards never retry");
        let violations = validate_detailed(&design(8), &board(), &out.detailed);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn pipeline_with_ilp_detailed() {
        let mut opts = MapperOptions::new();
        opts.detailed = DetailedStrategy::Ilp(DetailedIlpOptions::default());
        let mapper = Mapper::new(opts);
        let out = mapper.map(&design(6), &board()).unwrap();
        let violations = validate_detailed(&design(6), &board(), &out.detailed);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn pipeline_retry_on_three_port_bank() {
        // A 3-port bank where the Figure-3 accounting admits assignments
        // the packer cannot realize: the pipeline must retry with no-goods
        // and land on a feasible split (here: spill to the second type).
        let tri = BankType::new(
            "tri",
            2,
            3,
            vec![RamConfig::new(16, 8)],
            1,
            1,
            Placement::OnChip,
        )
        .unwrap();
        let spill = gmm_arch::devices::off_chip::zbt_sram("spill", 4, 65536, 32);
        let board = Board::new("tri-board", vec![tri, spill]).unwrap();
        // Three 8x8 segments: EP=2 each on the tri bank (total 6 = port
        // budget), but three EP-2 fragments cannot pack into two 3-port
        // instances.
        let mut b = DesignBuilder::new("d");
        for i in 0..3 {
            b.segment(format!("s{i}"), 8, 8).unwrap();
        }
        let design = b.build().unwrap();
        let mapper = Mapper::new(MapperOptions::new());
        let out = mapper.map(&design, &board).unwrap();
        assert!(out.stats.retries >= 1, "must have retried");
        let violations = validate_detailed(&design, &board, &out.detailed);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn complete_pipeline_agrees() {
        let mapper = Mapper::new(MapperOptions::new());
        let d = design(5);
        let two = mapper.map(&d, &board()).unwrap();
        let (one, _) = mapper.map_complete(&d, &board()).unwrap();
        let w = CostWeights::default();
        assert!(
            (two.cost.weighted(&w) - one.cost.weighted(&w)).abs() < 1e-6,
            "two-phase {} vs complete {}",
            two.cost.weighted(&w),
            one.cost.weighted(&w)
        );
    }
}
