//! Detailed memory mapping (paper §4.2) — constructive implementation.
//!
//! Given the global mapper's type assignment, the detailed mapper works one
//! bank type at a time: it re-shapes each data structure into the
//! Figure-2 fragments (full instances, width-remainder column,
//! depth-remainder row, corner), selects a configuration per fragment
//! (`Y_tipc`), and packs fragments onto concrete instances (`X_dtip`) with
//!
//! * ports assigned in order of decreasing fraction size (Figure 3),
//! * fragment regions reserved at power-of-two sizes and power-of-two
//!   aligned base addresses, so address decoding needs **no adders**,
//! * first-fit-decreasing packing, which provably never fails for the
//!   1- and 2-ported banks that dominate real boards (and, per the paper,
//!   may need a global-mapper retry for ≥3-ported banks).
//!
//! Because all instances of a type are identical, none of this affects the
//! global cost — the paper's central observation.

use crate::mapping::{DetailedMapping, Fragment, GlobalAssignment};
use crate::preprocess::{consumed_ports, round_pow2, PreTable};
use gmm_arch::{BankType, BankTypeId, Board, RamConfig};
use gmm_design::{Design, SegmentId};

/// A fragment before placement: geometry and port demand only.
#[derive(Debug, Clone, PartialEq)]
pub struct FragSpec {
    pub segment: SegmentId,
    pub config: RamConfig,
    pub used_depth: u32,
    pub reserved_depth: u32,
    /// Ports demanded on whichever instance hosts it (`EP` of Figure 3).
    pub ep: u32,
    pub word_offset: u32,
    pub bit_offset: u32,
}

impl FragSpec {
    #[inline]
    pub fn reserved_bits(&self) -> u64 {
        self.reserved_depth as u64 * self.config.width as u64
    }
}

/// Decompose one segment on one bank type into Figure-2 fragments.
///
/// The fragment list always covers the segment exactly: `full_cols` ×
/// `full_rows` full instances, a β column when the width does not divide,
/// a remainder row when the depth does not divide, and a corner when both.
pub fn fragment_segment(
    bank: &BankType,
    seg_id: SegmentId,
    seg_depth: u32,
    seg_width: u32,
) -> Vec<FragSpec> {
    let entry = crate::preprocess::preprocess_pair(bank, seg_depth, seg_width);
    let split = entry.split;
    let (alpha, beta) = (split.alpha, split.beta);
    let pt = bank.ports;
    let mut out = Vec::new();

    // Fully-utilized instances.
    for r in 0..entry.full_rows {
        for c in 0..split.full_cols {
            out.push(FragSpec {
                segment: seg_id,
                config: alpha,
                used_depth: alpha.depth,
                reserved_depth: alpha.depth,
                ep: pt,
                word_offset: r * alpha.depth,
                bit_offset: c * alpha.width,
            });
        }
    }
    // Width-remainder column: a β fragment of depth D_α per full row.
    if split.rem_width > 0 {
        for r in 0..entry.full_rows {
            out.push(FragSpec {
                segment: seg_id,
                config: beta,
                used_depth: alpha.depth,
                reserved_depth: round_pow2(alpha.depth),
                ep: consumed_ports(alpha.depth, beta.depth, pt),
                word_offset: r * alpha.depth,
                bit_offset: split.full_cols * alpha.width,
            });
        }
    }
    // Depth-remainder row: an α fragment of the leftover depth per column.
    if entry.rem_depth > 0 {
        for c in 0..split.full_cols {
            out.push(FragSpec {
                segment: seg_id,
                config: alpha,
                used_depth: entry.rem_depth,
                reserved_depth: round_pow2(entry.rem_depth),
                ep: consumed_ports(entry.rem_depth, alpha.depth, pt),
                word_offset: entry.full_rows * alpha.depth,
                bit_offset: c * alpha.width,
            });
        }
        // Corner.
        if split.rem_width > 0 {
            out.push(FragSpec {
                segment: seg_id,
                config: beta,
                used_depth: entry.rem_depth,
                reserved_depth: round_pow2(entry.rem_depth),
                ep: consumed_ports(entry.rem_depth, beta.depth, pt),
                word_offset: entry.full_rows * alpha.depth,
                bit_offset: split.full_cols * alpha.width,
            });
        }
    }
    out
}

/// Port and aligned-region bookkeeping for one physical instance.
#[derive(Debug)]
pub struct InstanceAllocator {
    capacity_bits: u64,
    ports_total: u32,
    ports_used: u32,
    /// Allocated bit intervals `[start, end)`, kept sorted by start.
    taken: Vec<(u64, u64)>,
}

impl InstanceAllocator {
    pub fn new(bank: &BankType) -> Self {
        Self::with_sharing(bank, 1)
    }

    /// Allocator with `sharing` virtual port slots per physical port (the
    /// arbitration extension); physical port of virtual slot `v` is
    /// `v % bank.ports`.
    pub fn with_sharing(bank: &BankType, sharing: u32) -> Self {
        InstanceAllocator {
            capacity_bits: bank.capacity_bits(),
            ports_total: bank.ports * sharing.max(1),
            ports_used: 0,
            taken: Vec::new(),
        }
    }

    #[inline]
    pub fn ports_free(&self) -> u32 {
        self.ports_total - self.ports_used
    }

    /// Try to place a fragment: returns `(first_port, base_word)` on
    /// success. Regions are placed at offsets that are multiples of the
    /// reserved size, preserving the no-adder alignment guarantee.
    pub fn try_place(&mut self, spec: &FragSpec) -> Option<(u32, u32)> {
        if spec.ep > self.ports_free() {
            return None;
        }
        let size = spec.reserved_bits();
        if size == 0 || size > self.capacity_bits {
            return None;
        }
        let mut offset = 0u64;
        'search: while offset + size <= self.capacity_bits {
            for &(s, e) in &self.taken {
                if offset < e && s < offset + size {
                    // Collision: jump past this interval, re-aligned.
                    offset = e.div_ceil(size) * size;
                    continue 'search;
                }
            }
            // Free slot found.
            let first_port = self.ports_used;
            self.ports_used += spec.ep;
            self.taken.push((offset, offset + size));
            self.taken.sort_unstable_by_key(|&(s, _)| s);
            let base_word = (offset / spec.config.width as u64) as u32;
            return Some((first_port, base_word));
        }
        None
    }
}

/// Why detailed mapping failed for one bank type.
#[derive(Debug, Clone, PartialEq)]
pub struct DetailedFailure {
    pub bank_type: BankTypeId,
    /// Segments assigned to the failing type.
    pub segments: Vec<SegmentId>,
}

/// Run constructive detailed mapping for a global assignment.
pub fn map_detailed(
    design: &Design,
    board: &Board,
    _pre: &PreTable,
    global: &GlobalAssignment,
) -> Result<DetailedMapping, DetailedFailure> {
    let mut mapping = DetailedMapping::default();
    let by_type = global.segments_by_type(board.num_types());

    for (t, segments) in by_type.iter().enumerate() {
        if segments.is_empty() {
            continue;
        }
        let tid = BankTypeId(t);
        let bank = board.bank(tid);

        // Gather all fragments of all segments on this type.
        let mut specs: Vec<FragSpec> = Vec::new();
        for &d in segments {
            let seg = design.segment(d);
            specs.extend(fragment_segment(bank, d, seg.depth, seg.width));
        }
        // Decreasing fraction (port demand, then size): the Figure-3 port
        // assignment order.
        specs.sort_by(|a, b| {
            b.ep.cmp(&a.ep)
                .then(b.reserved_bits().cmp(&a.reserved_bits()))
                .then(a.segment.cmp(&b.segment))
        });

        let mut instances: Vec<InstanceAllocator> = Vec::new();
        for spec in &specs {
            let mut placed = None;
            for (i, inst) in instances.iter_mut().enumerate() {
                if let Some((first_port, base_word)) = inst.try_place(spec) {
                    placed = Some((i as u32, first_port, base_word));
                    break;
                }
            }
            if placed.is_none() && (instances.len() as u32) < bank.instances {
                let mut inst = InstanceAllocator::new(bank);
                if let Some((first_port, base_word)) = inst.try_place(spec) {
                    placed = Some((instances.len() as u32, first_port, base_word));
                }
                instances.push(inst);
            }
            match placed {
                Some((instance, first_port, base_word)) => {
                    mapping.fragments.push(Fragment {
                        segment: spec.segment,
                        bank_type: tid,
                        instance,
                        ports: (first_port..first_port + spec.ep).collect(),
                        config: spec.config,
                        base_word,
                        used_depth: spec.used_depth,
                        reserved_depth: spec.reserved_depth,
                        bit_offset: spec.bit_offset,
                        word_offset: spec.word_offset,
                    });
                }
                None => {
                    return Err(DetailedFailure {
                        bank_type: tid,
                        segments: segments.clone(),
                    });
                }
            }
        }
    }
    Ok(mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostMatrix, CostWeights};
    use crate::global::{solve_global, SolverBackend};
    use crate::mapping::validate_detailed;
    use gmm_arch::Placement;
    use gmm_design::DesignBuilder;

    fn fig2_bank(instances: u32) -> BankType {
        BankType::new(
            "fig2",
            instances,
            3,
            vec![
                RamConfig::new(128, 1),
                RamConfig::new(64, 2),
                RamConfig::new(32, 4),
                RamConfig::new(16, 8),
            ],
            1,
            1,
            Placement::OnChip,
        )
        .unwrap()
    }

    #[test]
    fn figure2_fragments() {
        let frags = fragment_segment(&fig2_bank(12), SegmentId(0), 55, 17);
        // 6 full + 3 width-column + 2 depth-row + 1 corner = 12 fragments.
        assert_eq!(frags.len(), 12);
        let total_ep: u32 = frags.iter().map(|f| f.ep).sum();
        assert_eq!(total_ep, 26, "CP_dt must equal the fragment EP sum");
        // Coverage area check: sum of used rectangles = 55*17 bits.
        let area: u64 = frags
            .iter()
            .map(|f| {
                let w = f.config.width.min(17 - f.bit_offset);
                f.used_depth as u64 * w as u64
            })
            .sum();
        assert_eq!(area, 55 * 17);
    }

    #[test]
    fn fragment_ep_matches_pretable_cp() {
        // Property: fragment EP sum == CP_dt for assorted shapes.
        let bank = fig2_bank(12);
        for (d, w) in [(1u32, 1u32), (16, 8), (55, 17), (100, 3), (128, 16), (7, 7), (129, 9)] {
            let frags = fragment_segment(&bank, SegmentId(0), d, w);
            let entry = crate::preprocess::preprocess_pair(&bank, d, w);
            let ep_sum: u32 = frags.iter().map(|f| f.ep).sum();
            assert_eq!(ep_sum, entry.cp(), "mismatch for {d}x{w}");
        }
    }

    #[test]
    fn allocator_alignment() {
        let bank = fig2_bank(1);
        let mut inst = InstanceAllocator::new(&bank);
        let spec = FragSpec {
            segment: SegmentId(0),
            config: RamConfig::new(128, 1),
            used_depth: 16,
            reserved_depth: 16,
            ep: 1,
            word_offset: 0,
            bit_offset: 0,
        };
        let (p0, w0) = inst.try_place(&spec).unwrap();
        assert_eq!((p0, w0), (0, 0));
        let (p1, w1) = inst.try_place(&spec).unwrap();
        assert_eq!(p1, 1);
        assert_eq!(w1 % 16, 0);
        let (p2, _) = inst.try_place(&spec).unwrap();
        assert_eq!(p2, 2);
        // Out of ports now.
        assert!(inst.try_place(&spec).is_none());
    }

    #[test]
    fn allocator_respects_capacity() {
        let bank = BankType::new(
            "b",
            1,
            2,
            vec![RamConfig::new(16, 8)],
            1,
            1,
            Placement::OnChip,
        )
        .unwrap();
        let mut inst = InstanceAllocator::new(&bank);
        let big = FragSpec {
            segment: SegmentId(0),
            config: RamConfig::new(16, 8),
            used_depth: 16,
            reserved_depth: 16,
            ep: 1,
            word_offset: 0,
            bit_offset: 0,
        };
        assert!(inst.try_place(&big).is_some());
        // Instance is spatially full even though a port remains.
        assert_eq!(inst.ports_free(), 1);
        assert!(inst.try_place(&big).is_none());
    }

    /// End-to-end: global then detailed, validated, on a dual-port board.
    #[test]
    fn global_then_detailed_validates() {
        let mut b = DesignBuilder::new("d");
        for i in 0..8 {
            b.segment(format!("s{i}"), 40 + 17 * i, 3 + (i % 6)).unwrap();
        }
        let design = b.build().unwrap();
        let board = Board::new(
            "b",
            vec![
                BankType::new(
                    "onchip",
                    8,
                    2,
                    vec![
                        RamConfig::new(4096, 1),
                        RamConfig::new(2048, 2),
                        RamConfig::new(1024, 4),
                        RamConfig::new(512, 8),
                        RamConfig::new(256, 16),
                    ],
                    1,
                    1,
                    Placement::OnChip,
                )
                .unwrap(),
                gmm_arch::devices::off_chip::zbt_sram("sram", 2, 65536, 32),
            ],
        )
        .unwrap();
        let pre = PreTable::build(&design, &board);
        let matrix = CostMatrix::build(&design, &board, &pre);
        let global = solve_global(
            &design,
            &board,
            &pre,
            &matrix,
            &CostWeights::default(),
            &SolverBackend::default(),
            false,
            &[],
        )
        .unwrap();
        let detailed = map_detailed(&design, &board, &pre, &global).unwrap();
        let violations = validate_detailed(&design, &board, &detailed);
        assert!(violations.is_empty(), "violations: {violations:?}");
        // Every fragment sits on the type global mapping chose.
        for f in &detailed.fragments {
            assert_eq!(f.bank_type, global.type_of[f.segment.0]);
        }
    }

    #[test]
    fn detailed_failure_reports_segments() {
        // Force an impossible packing directly (bypassing global):
        // 3 fragments of EP=2 on a 3-port bank with 2 instances would fit
        // the global port constraint (6 <= 6) but not the packing.
        let board = Board::new("b", vec![fig2_bank(2)]).unwrap();
        let mut b = DesignBuilder::new("d");
        // Each 8x8 segment: alpha 16x8, one fragment of depth 8 -> EP=2.
        for i in 0..3 {
            b.segment(format!("s{i}"), 8, 8).unwrap();
        }
        let design = b.build().unwrap();
        let pre = PreTable::build(&design, &board);
        let global = GlobalAssignment {
            type_of: vec![BankTypeId(0); 3],
            cost: Default::default(),
        };
        let err = map_detailed(&design, &board, &pre, &global).unwrap_err();
        assert_eq!(err.bank_type, BankTypeId(0));
        assert_eq!(err.segments.len(), 3);
    }
}
