//! ILP pre-processing (paper §4.1.1).
//!
//! For every (data structure `d`, bank type `t`) pair the global mapper
//! needs three numbers computed up front:
//!
//! * **`CP_dt`** — total ports of type `t` consumed if `d` is assigned to
//!   it, split into the four components of Figure 2: fully-used instances
//!   (`FP`), the width-remainder column (`WP`), the depth-remainder row
//!   (`DP`), and the corner (`WDP`);
//! * **`CW_dt`** — the "ceiling" width actually occupied;
//! * **`CD_dt`** — the "ceiling" depth actually occupied (depth remainders
//!   round up to a power of two so that fragment base addresses need no
//!   offset adders — Figure 3).
//!
//! The fractional-port helper [`consumed_ports`] reproduces Figure 3
//! exactly, including its documented conservatism for banks with more than
//! two ports (the `(8, 8, 0)` rejection of Table 2).

use gmm_arch::{BankType, BankTypeId, Board, RamConfig};
use gmm_design::{Design, SegmentId};
use serde::{Deserialize, Serialize};

/// Round up to the next power of two (`round(d, pow(2))` in Figure 3);
/// zero stays zero.
#[inline]
pub fn round_pow2(d: u32) -> u32 {
    if d == 0 {
        0
    } else {
        d.next_power_of_two()
    }
}

/// Figure 3: fractional port consumption of a fragment of `frag_depth`
/// words placed in a bank of `bank_depth` words with `ports` ports.
///
/// The fragment depth is rounded to a power of two, the occupied fraction
/// of the instance computed, and the port count taken as
/// `ceil(fraction * ports)`. The result is capped at `ports` (a fragment
/// can never need more ports than the instance has; the cap only engages
/// for non-power-of-two bank depths, which Table 1 devices never have).
#[inline]
pub fn consumed_ports(frag_depth: u32, bank_depth: u32, ports: u32) -> u32 {
    debug_assert!(bank_depth > 0 && ports > 0);
    if frag_depth == 0 {
        return 0;
    }
    let rounded = round_pow2(frag_depth) as u64;
    // ceil(rounded / bank_depth * ports) in exact integer arithmetic.
    let ep = (rounded * ports as u64).div_ceil(bank_depth as u64);
    ep.min(ports as u64) as u32
}

/// The α/β configuration pair of §4.1.1 for a segment width on a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WidthSplit {
    /// α: configuration with the smallest width ≥ the segment width, or
    /// the widest configuration when the segment is wider than all.
    pub alpha: RamConfig,
    /// β: configuration for the width remainder (smallest width ≥
    /// `W_d mod W_α`); equals α when the width divides evenly.
    pub beta: RamConfig,
    /// Columns of full-α-width instances.
    pub full_cols: u32,
    /// Width remainder handled by β (0 when none).
    pub rem_width: u32,
}

/// Pre-processed coefficients of one (segment, bank type) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreEntry {
    /// Ports consumed by fully-utilized instances (`FP_dt`).
    pub fp: u32,
    /// Ports consumed by the width-remainder column (`WP_dt`).
    pub wp: u32,
    /// Ports consumed by the depth-remainder row (`DP_dt`).
    pub dp: u32,
    /// Ports consumed by the corner fragment (`WDP_dt`).
    pub wdp: u32,
    /// Ceiling width `CW_dt`.
    pub cw: u32,
    /// Ceiling depth `CD_dt`.
    pub cd: u64,
    /// Width split (α/β and the column arithmetic).
    pub split: WidthSplit,
    /// Full-depth row chunks (`floor(D_d / D_α)`).
    pub full_rows: u32,
    /// Depth remainder (`D_d mod D_α`).
    pub rem_depth: u32,
}

impl PreEntry {
    /// Total consumed ports `CP_dt = FP + WP + DP + WDP`.
    #[inline]
    pub fn cp(&self) -> u32 {
        self.fp + self.wp + self.dp + self.wdp
    }

    /// Occupied area `CW_dt * CD_dt` in bits, the capacity-constraint
    /// coefficient.
    #[inline]
    pub fn area_bits(&self) -> u64 {
        self.cw as u64 * self.cd
    }
}

/// Compute the α/β width split of a segment on a bank.
pub fn width_split(bank: &BankType, seg_width: u32) -> WidthSplit {
    let alpha = bank.config_for_width(seg_width);
    let full_cols = seg_width / alpha.width;
    let rem_width = seg_width % alpha.width;
    let beta = if rem_width > 0 {
        bank.config_for_width(rem_width)
    } else {
        alpha
    };
    WidthSplit {
        alpha,
        beta,
        full_cols,
        rem_width,
    }
}

/// Pre-process one (segment, bank type) pair — the §4.1.1 computation.
pub fn preprocess_pair(bank: &BankType, seg_depth: u32, seg_width: u32) -> PreEntry {
    let split = width_split(bank, seg_width);
    let (alpha, beta) = (split.alpha, split.beta);
    let pt = bank.ports;

    let full_rows = seg_depth / alpha.depth;
    let rem_depth = seg_depth % alpha.depth;

    // FP: fully-utilized instances consume every port.
    let fp = full_rows * split.full_cols * pt;
    // WP: width-remainder column — one β-config fragment of depth D_α per
    // full row chunk.
    let wp = if split.rem_width == 0 {
        0
    } else {
        full_rows * consumed_ports(alpha.depth, beta.depth, pt)
    };
    // DP: depth-remainder row — one α-config fragment of the remainder
    // depth per full column.
    let dp = split.full_cols * consumed_ports(rem_depth, alpha.depth, pt);
    // WDP: the corner — remainder depth on a β-config instance.
    let wdp = if split.rem_width == 0 {
        0
    } else {
        consumed_ports(rem_depth, beta.depth, pt)
    };

    // CW: full columns at α width plus the β remainder column.
    let cw = split.full_cols * alpha.width + if split.rem_width > 0 { beta.width } else { 0 };
    // CD: full rows at α depth plus the pow-2-rounded remainder.
    let cd = full_rows as u64 * alpha.depth as u64 + round_pow2(rem_depth) as u64;

    PreEntry {
        fp,
        wp,
        dp,
        wdp,
        cw,
        cd,
        split,
        full_rows,
        rem_depth,
    }
}

/// The full `M x N` pre-processing table for a design on a board.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PreTable {
    /// `entries[d][t]`.
    entries: Vec<Vec<PreEntry>>,
    /// `feasible[d][t]`: the pair satisfies the type's port and capacity
    /// limits on its own (otherwise `Z_dt` is forced to zero).
    feasible: Vec<Vec<bool>>,
}

impl PreTable {
    /// Pre-process every (segment, bank type) pair.
    pub fn build(design: &Design, board: &Board) -> Self {
        let mut entries = Vec::with_capacity(design.num_segments());
        let mut feasible = Vec::with_capacity(design.num_segments());
        for (_, seg) in design.iter() {
            let mut row = Vec::with_capacity(board.num_types());
            let mut frow = Vec::with_capacity(board.num_types());
            for (_, bank) in board.iter() {
                let e = preprocess_pair(bank, seg.depth, seg.width);
                let fits = e.cp() <= bank.total_ports()
                    && e.area_bits() <= bank.total_capacity_bits();
                row.push(e);
                frow.push(fits);
            }
            entries.push(row);
            feasible.push(frow);
        }
        PreTable { entries, feasible }
    }

    #[inline]
    pub fn entry(&self, d: SegmentId, t: BankTypeId) -> &PreEntry {
        &self.entries[d.0][t.0]
    }

    #[inline]
    pub fn is_feasible(&self, d: SegmentId, t: BankTypeId) -> bool {
        self.feasible[d.0][t.0]
    }

    pub fn num_segments(&self) -> usize {
        self.entries.len()
    }

    pub fn num_types(&self) -> usize {
        self.entries.first().map_or(0, Vec::len)
    }

    /// Segments with no feasible type at all (the design cannot map).
    pub fn unmappable_segments(&self) -> Vec<SegmentId> {
        self.feasible
            .iter()
            .enumerate()
            .filter(|(_, row)| !row.iter().any(|&f| f))
            .map(|(d, _)| SegmentId(d))
            .collect()
    }
}

/// One row of Table 2: a non-increasing split of an instance's words over
/// its ports (powers of two or zero), plus whether the Figure-3 port
/// accounting accepts it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocationOption {
    /// Words allotted to each port slot, non-increasing.
    pub words: Vec<u32>,
    /// Whether `consumed_ports` accounting accepts this split
    /// (e.g. `(8, 8, 0)` on a 3-port 16-word bank is rejected).
    pub accepted: bool,
}

/// Enumerate the general space-allocation options of a `ports`-port,
/// `depth`-word memory bank — Table 2 of the paper for `(3, 16)`.
///
/// Options are all non-increasing tuples of power-of-two (or zero) word
/// counts whose sum fits the instance. Each option is annotated with the
/// Figure-3 acceptance verdict.
pub fn enumerate_port_allocations(ports: u32, depth: u32) -> Vec<AllocationOption> {
    let mut sizes: Vec<u32> = vec![0];
    let mut p = 1u32;
    while p <= depth {
        sizes.push(p);
        p *= 2;
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a)); // descending

    let mut out = Vec::new();
    let mut cur: Vec<u32> = Vec::with_capacity(ports as usize);
    fn rec(
        sizes: &[u32],
        ports: u32,
        depth: u32,
        start: usize,
        used: u32,
        cur: &mut Vec<u32>,
        out: &mut Vec<AllocationOption>,
    ) {
        if cur.len() == ports as usize {
            let consumed: u32 = cur
                .iter()
                .filter(|&&w| w > 0)
                .map(|&w| consumed_ports(w, depth, ports))
                .sum();
            out.push(AllocationOption {
                words: cur.clone(),
                accepted: consumed <= ports,
            });
            return;
        }
        for (k, &s) in sizes.iter().enumerate().skip(start) {
            if used + s > depth {
                continue;
            }
            cur.push(s);
            rec(sizes, ports, depth, k, used + s, cur, out);
            cur.pop();
        }
    }
    rec(&sizes, ports, depth, 0, 0, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmm_arch::{BankType, Placement, RamConfig};

    /// The Figure 2 bank: 3 ports, configs 128x1, 64x2, 32x4, 16x8.
    fn fig2_bank() -> BankType {
        BankType::new(
            "fig2",
            12,
            3,
            vec![
                RamConfig::new(128, 1),
                RamConfig::new(64, 2),
                RamConfig::new(32, 4),
                RamConfig::new(16, 8),
            ],
            1,
            1,
            Placement::OnChip,
        )
        .unwrap()
    }

    #[test]
    fn round_pow2_values() {
        assert_eq!(round_pow2(0), 0);
        assert_eq!(round_pow2(1), 1);
        assert_eq!(round_pow2(7), 8);
        assert_eq!(round_pow2(8), 8);
        assert_eq!(round_pow2(9), 16);
    }

    #[test]
    fn consumed_ports_figure3() {
        // 16 words in a 128-word 3-port bank: frac 1/8, EP = ceil(3/8) = 1.
        assert_eq!(consumed_ports(16, 128, 3), 1);
        // 7 -> 8 words in a 16-word 3-port bank: frac 1/2, EP = 2.
        assert_eq!(consumed_ports(7, 16, 3), 2);
        // 8 words of 16, 3 ports: the Table 2 rejection driver (EP = 2).
        assert_eq!(consumed_ports(8, 16, 3), 2);
        // Full instance.
        assert_eq!(consumed_ports(16, 16, 3), 3);
        assert_eq!(consumed_ports(128, 128, 3), 3);
        // Empty fragment.
        assert_eq!(consumed_ports(0, 16, 3), 0);
        // Dual-port bank: half instance = 1 port (exact, no waste).
        assert_eq!(consumed_ports(8, 16, 2), 1);
        assert_eq!(consumed_ports(9, 16, 2), 2);
    }

    #[test]
    fn figure2_worked_example() {
        // A 55x17 structure on the Figure-2 bank: FP=18, WP=3, DP=4, WDP=1.
        let e = preprocess_pair(&fig2_bank(), 55, 17);
        assert_eq!(e.split.alpha, RamConfig::new(16, 8), "alpha is 16x8");
        assert_eq!(e.split.beta, RamConfig::new(128, 1), "beta is 128x1");
        assert_eq!(e.split.full_cols, 2);
        assert_eq!(e.split.rem_width, 1);
        assert_eq!(e.full_rows, 3);
        assert_eq!(e.rem_depth, 7);
        assert_eq!(e.fp, 18, "upper-left: 6 full instances x 3 ports");
        assert_eq!(e.wp, 3, "right column: 3 x 1 port");
        assert_eq!(e.dp, 4, "bottom row: 2 x 2 ports");
        assert_eq!(e.wdp, 1, "corner: 1 port");
        assert_eq!(e.cp(), 26);
        assert_eq!(e.cw, 17, "CW = 2*8 + 1");
        assert_eq!(e.cd, 56, "CD = 3*16 + pow2(7)=8");
    }

    #[test]
    fn exact_width_has_no_beta_column() {
        let e = preprocess_pair(&fig2_bank(), 32, 16);
        assert_eq!(e.split.full_cols, 2);
        assert_eq!(e.split.rem_width, 0);
        assert_eq!(e.wp, 0);
        assert_eq!(e.wdp, 0);
        assert_eq!(e.cw, 16);
        // 32 words = 2 full 16-deep rows: no depth remainder.
        assert_eq!(e.dp, 0);
        assert_eq!(e.cd, 32);
        assert_eq!(e.cp(), 2 * 2 * 3);
    }

    #[test]
    fn narrow_segment_uses_alpha_only() {
        // 3-bit wide segment: alpha is the 32x4 config; no full columns.
        let e = preprocess_pair(&fig2_bank(), 20, 3);
        assert_eq!(e.split.alpha, RamConfig::new(32, 4));
        assert_eq!(e.split.full_cols, 0);
        assert_eq!(e.split.rem_width, 3);
        assert_eq!(e.split.beta, RamConfig::new(32, 4));
        assert_eq!(e.fp, 0);
        assert_eq!(e.dp, 0);
        // Depth 20 < 32: one beta corner fragment of rounded depth 32.
        assert_eq!(e.full_rows, 0);
        assert_eq!(e.wp, 0);
        assert_eq!(e.wdp, consumed_ports(20, 32, 3));
        assert_eq!(e.wdp, 3); // 20 -> 32 words = full instance
        assert_eq!(e.cw, 4);
        assert_eq!(e.cd, 32);
    }

    #[test]
    fn tiny_segment_single_port() {
        // 4x1 segment: beta = 128x1, rounded depth 4, frac 1/32 -> 1 port.
        let e = preprocess_pair(&fig2_bank(), 4, 1);
        assert_eq!(e.cp(), 1);
        assert_eq!(e.cw, 1);
        assert_eq!(e.cd, 4);
    }

    #[test]
    fn single_config_offchip_bank() {
        let sram = BankType::new(
            "sram",
            2,
            1,
            vec![RamConfig::new(262_144, 32)],
            2,
            2,
            Placement::DirectOffChip,
        )
        .unwrap();
        // 1000x16 fits one port easily.
        let e = preprocess_pair(&sram, 1000, 16);
        assert_eq!(e.split.alpha, RamConfig::new(262_144, 32));
        assert_eq!(e.cp(), 1);
        assert_eq!(e.cw, 32);
        assert_eq!(e.cd, 1024);
        // Wider than the bank: two columns.
        let w = preprocess_pair(&sram, 1000, 40);
        assert_eq!(w.split.full_cols, 1);
        assert_eq!(w.split.rem_width, 8);
        assert_eq!(w.cw, 64);
        assert_eq!(w.cp(), 2);
    }

    #[test]
    fn table2_enumeration_matches_paper() {
        let opts = enumerate_port_allocations(3, 16);
        // Paper's Table 2 has 16 rows when the port-3 option lists are
        // expanded; here every concrete tuple is one entry. Spot-check the
        // table's content.
        let find = |w: &[u32]| opts.iter().find(|o| o.words == w).map(|o| o.accepted);
        assert_eq!(find(&[16, 0, 0]), Some(true));
        // The explicitly-rejected (8, 8, 0).
        assert_eq!(find(&[8, 8, 0]), Some(false));
        assert_eq!(find(&[8, 4, 4]), Some(false)); // 2+1+1 = 4 > 3 ports
        assert_eq!(find(&[8, 4, 2]), Some(false));
        assert_eq!(find(&[8, 4, 0]), Some(true)); // 2+1 = 3 ports
        assert_eq!(find(&[8, 2, 2]), Some(false)); // 2+1+1 = 4 > 3 ports
        assert_eq!(find(&[8, 2, 0]), Some(true)); // 2+1 = 3 ports
        assert_eq!(find(&[4, 4, 4]), Some(true)); // 1+1+1
        assert_eq!(find(&[1, 1, 1]), Some(true));
        assert_eq!(find(&[0, 0, 0]), Some(true));
        // No tuple exceeds the instance capacity.
        assert!(opts.iter().all(|o| o.words.iter().sum::<u32>() <= 16));
        // Tuples are non-increasing.
        assert!(opts
            .iter()
            .all(|o| o.words.windows(2).all(|w| w[0] >= w[1])));
        // (16, 8, ...) must not exist.
        assert!(!opts.iter().any(|o| o.words[0] == 16 && o.words[1] > 0));
    }

    #[test]
    fn pretable_feasibility() {
        use gmm_design::DesignBuilder;
        let mut b = DesignBuilder::new("t");
        let small = b.segment("small", 16, 8).unwrap();
        let huge = b.segment("huge", 1 << 20, 64).unwrap();
        let design = b.build().unwrap();
        let board = gmm_arch::Board::new("one-bank", vec![fig2_bank()]).unwrap();
        let table = PreTable::build(&design, &board);
        assert!(table.is_feasible(small, BankTypeId(0)));
        assert!(!table.is_feasible(huge, BankTypeId(0)));
        assert_eq!(table.unmappable_segments(), vec![huge]);
    }
}
