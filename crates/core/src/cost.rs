//! The objective model of §4.1.3: latency cost, pin-delay cost, and
//! pin-I/O cost, combined with normalization weights `α_i`.
//!
//! The paper writes the latency and pin-delay terms with `D_d` as the
//! access-count proxy under the stated assumption "the number of reads is
//! equal to the number of writes for every data structure". We keep the
//! general form driven by each segment's [`gmm_design::AccessProfile`]
//! (whose default is exactly `reads = writes = D_d`), so profile-aware
//! mappings come for free:
//!
//! * latency  = `reads_d * RL_t + writes_d * WL_t`
//! * pin delay = `(reads_d + writes_d) * T_t`
//! * pin I/O  = `(ceil(log2(CD_dt)) + CW_dt) * T_t`
//!
//! With the default profile these equal the paper's terms up to a constant
//! factor of 2 on pin delay, which the weight `α_2` absorbs.

use crate::preprocess::{PreEntry, PreTable};
use gmm_arch::{BankType, BankTypeId, Board};
use gmm_design::{Design, SegmentId};
use serde::{Deserialize, Serialize};

/// Normalization weights `α_1..α_3` of the cost function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    pub latency: f64,
    pub pin_delay: f64,
    pub pin_io: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        // Latency dominates; pin terms act as interconnect tie-breakers.
        CostWeights {
            latency: 1.0,
            pin_delay: 0.25,
            pin_io: 0.05,
        }
    }
}

impl CostWeights {
    /// Pure-latency objective (useful in tests and ablations).
    pub fn latency_only() -> Self {
        CostWeights {
            latency: 1.0,
            pin_delay: 0.0,
            pin_io: 0.0,
        }
    }
}

/// Cost components of assigning one segment to one bank type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairCost {
    pub latency: f64,
    pub pin_delay: f64,
    pub pin_io: f64,
}

impl PairCost {
    /// Weighted scalar cost.
    #[inline]
    pub fn weighted(&self, w: &CostWeights) -> f64 {
        self.latency * w.latency + self.pin_delay * w.pin_delay + self.pin_io * w.pin_io
    }
}

/// `ceil(log2(x))` for `x >= 1` — address bits of the consumed depth.
#[inline]
pub fn ceil_log2(x: u64) -> u32 {
    debug_assert!(x >= 1);
    64 - (x - 1).leading_zeros()
    // For x = 1 this yields 0 (one word needs no address bits).
}

/// Compute the three §4.1.3 cost components for one pair.
pub fn pair_cost(design: &Design, d: SegmentId, bank: &BankType, pre: &PreEntry) -> PairCost {
    let profile = design.profile(d);
    let t_pins = bank.pins_traversed() as f64;
    let latency = profile.latency_cycles(bank.read_latency, bank.write_latency) as f64;
    let pin_delay = profile.total() as f64 * t_pins;
    let pin_io = (ceil_log2(pre.cd.max(1)) as f64 + pre.cw as f64) * t_pins;
    PairCost {
        latency,
        pin_delay,
        pin_io,
    }
}

/// Full cost matrix over (segment, type) pairs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostMatrix {
    costs: Vec<Vec<PairCost>>,
}

impl CostMatrix {
    pub fn build(design: &Design, board: &Board, pre: &PreTable) -> Self {
        Self::build_with_pins(design, board, pre, |_, t| {
            board.bank(t).pins_traversed()
        })
    }

    /// Build with a per-(segment, type) pin-traversal override — the hook
    /// the multi-processing-unit extension uses (paper §6: "all logic
    /// areas are assumed equidistant from each physical bank; the model
    /// needs to be enhanced to support multiple processing units").
    pub fn build_with_pins(
        design: &Design,
        board: &Board,
        pre: &PreTable,
        pins: impl Fn(SegmentId, BankTypeId) -> u32,
    ) -> Self {
        let costs = design
            .iter()
            .map(|(d, _)| {
                board
                    .iter()
                    .map(|(t, bank)| {
                        let e = pre.entry(d, t);
                        let profile = design.profile(d);
                        let t_pins = pins(d, t) as f64;
                        PairCost {
                            latency: profile
                                .latency_cycles(bank.read_latency, bank.write_latency)
                                as f64,
                            pin_delay: profile.total() as f64 * t_pins,
                            pin_io: (ceil_log2(e.cd.max(1)) as f64 + e.cw as f64) * t_pins,
                        }
                    })
                    .collect()
            })
            .collect();
        CostMatrix { costs }
    }

    #[inline]
    pub fn pair(&self, d: SegmentId, t: BankTypeId) -> &PairCost {
        &self.costs[d.0][t.0]
    }
}

/// Aggregate cost of a complete type assignment.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    pub latency: f64,
    pub pin_delay: f64,
    pub pin_io: f64,
}

impl CostBreakdown {
    pub fn weighted(&self, w: &CostWeights) -> f64 {
        self.latency * w.latency + self.pin_delay * w.pin_delay + self.pin_io * w.pin_io
    }

    pub fn add(&mut self, pair: &PairCost) {
        self.latency += pair.latency;
        self.pin_delay += pair.pin_delay;
        self.pin_io += pair.pin_io;
    }
}

/// Evaluate a full assignment (segment -> bank type) against the matrix.
pub fn assignment_cost(matrix: &CostMatrix, assignment: &[BankTypeId]) -> CostBreakdown {
    let mut total = CostBreakdown::default();
    for (d, &t) in assignment.iter().enumerate() {
        total.add(matrix.pair(SegmentId(d), t));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmm_arch::{BankType, Placement, RamConfig};
    use gmm_design::DesignBuilder;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(56), 6);
        assert_eq!(ceil_log2(1 << 20), 20);
    }

    fn board() -> gmm_arch::Board {
        gmm_arch::Board::new(
            "b",
            vec![
                BankType::new(
                    "onchip",
                    8,
                    2,
                    vec![RamConfig::new(4096, 1), RamConfig::new(512, 8)],
                    1,
                    1,
                    Placement::OnChip,
                )
                .unwrap(),
                BankType::new(
                    "offchip",
                    2,
                    1,
                    vec![RamConfig::new(65536, 32)],
                    2,
                    2,
                    Placement::DirectOffChip,
                )
                .unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn onchip_has_no_pin_costs() {
        let mut b = DesignBuilder::new("t");
        let s = b.segment("s", 100, 8).unwrap();
        let design = b.build().unwrap();
        let board = board();
        let pre = crate::preprocess::PreTable::build(&design, &board);
        let m = CostMatrix::build(&design, &board, &pre);
        let on = m.pair(s, BankTypeId(0));
        assert_eq!(on.pin_delay, 0.0);
        assert_eq!(on.pin_io, 0.0);
        // Default profile: 100 reads + 100 writes, 1-cycle each way.
        assert_eq!(on.latency, 200.0);
    }

    #[test]
    fn offchip_pin_terms() {
        let mut b = DesignBuilder::new("t");
        let s = b.segment("s", 100, 8).unwrap();
        let design = b.build().unwrap();
        let board = board();
        let pre = crate::preprocess::PreTable::build(&design, &board);
        let m = CostMatrix::build(&design, &board, &pre);
        let off = m.pair(s, BankTypeId(1));
        // latency: 100*2 + 100*2 = 400.
        assert_eq!(off.latency, 400.0);
        // pin delay: 200 accesses * 2 pins.
        assert_eq!(off.pin_delay, 400.0);
        // pin io: (ceil(log2(CD)) + CW) * 2; CD=128 (100 rounded), CW=32.
        let e = pre.entry(s, BankTypeId(1));
        assert_eq!(e.cd, 128);
        assert_eq!(e.cw, 32);
        assert_eq!(off.pin_io, (7.0 + 32.0) * 2.0);
    }

    #[test]
    fn weighted_combination() {
        let pc = PairCost {
            latency: 10.0,
            pin_delay: 4.0,
            pin_io: 2.0,
        };
        let w = CostWeights {
            latency: 1.0,
            pin_delay: 0.5,
            pin_io: 0.25,
        };
        assert_eq!(pc.weighted(&w), 12.5);
    }

    #[test]
    fn assignment_cost_sums_pairs() {
        let mut b = DesignBuilder::new("t");
        let s1 = b.segment("a", 10, 8).unwrap();
        let s2 = b.segment("b", 20, 8).unwrap();
        let design = b.build().unwrap();
        let board = board();
        let pre = crate::preprocess::PreTable::build(&design, &board);
        let m = CostMatrix::build(&design, &board, &pre);
        let total = assignment_cost(&m, &[BankTypeId(0), BankTypeId(0)]);
        let a = m.pair(s1, BankTypeId(0));
        let c = m.pair(s2, BankTypeId(0));
        assert_eq!(total.latency, a.latency + c.latency);
    }
}
