//! Architecture-sweep grids: candidate boards × a design suite, scored by
//! geometric-mean mapped cost.
//!
//! The `arch-sweep` scenario asks the question an FPGA platform architect
//! asks: *which memory architecture serves my whole workload best, and at
//! what capacity price?* A [`SweepSpec`] spans a grid of on-chip BRAM
//! parameters (per-instance capacity ladder × instance counts × maximum
//! data widths); every architecture point is a full [`Board`] mapped
//! against the same suite of designs, and architectures are compared by
//! the **geometric mean** of the per-design mapped costs (rapid-map's
//! `compute_geometric_area` idiom — the geomean keeps one outlier design
//! from dominating a suite-wide score the way an arithmetic mean would).
//! The natural output is a Pareto front over (suite geomean cost, total
//! board capacity): the cheapest architecture at every capacity budget.
//!
//! This module generates the grid, the suite, and the scoring math; the
//! CLI's `arch-sweep` verb fans the product through the batch service
//! machinery and renders the table + Pareto JSON.

use crate::stream::{stream_instances, StreamSpec};
use gmm_arch::{geometric_ladder, BankType, Board, Placement, RamConfig};
use gmm_design::Design;

/// The sweep grid and its evaluation suite.
///
/// Defaults: capacities `[2048, 4096, 8192]` bits × counts `[4]` ×
/// widths `[16]` (a 3-point capacity ladder), suite of 4 designs from
/// the default stream seed.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Per-instance on-chip BRAM capacities (bits) to sweep.
    pub capacities: Vec<u64>,
    /// On-chip BRAM instance counts to sweep.
    pub bank_counts: Vec<u32>,
    /// Maximum data widths of the on-chip config ladder to sweep.
    pub widths: Vec<u32>,
    /// How many suite designs to draw from the stream generator.
    pub suite: usize,
    /// Stream seed the suite is drawn from.
    pub seed: u64,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            capacities: vec![2048, 4096, 8192],
            bank_counts: vec![4],
            widths: vec![16],
            suite: 4,
            seed: StreamSpec::default().seed,
        }
    }
}

/// One architecture in the grid: a named, fully-built board.
#[derive(Debug, Clone)]
pub struct ArchPoint {
    /// `bram<capacity>x<count>w<width>`, stable across runs.
    pub name: String,
    /// Swept per-instance on-chip capacity (bits).
    pub capacity_bits: u64,
    /// Swept on-chip instance count.
    pub instances: u32,
    /// Swept maximum on-chip data width.
    pub width: u32,
    /// The board: the swept on-chip type plus a fixed off-chip spill tier
    /// sized so every suite design stays mappable on every grid point.
    pub board: Board,
}

/// A scored architecture point (the CLI table row / JSON record).
#[derive(Debug, Clone)]
pub struct ArchScore {
    pub name: String,
    /// Total board capacity in bits (both tiers) — the Pareto x-axis.
    pub total_capacity_bits: u64,
    /// Geometric mean of the per-design mapped costs — the Pareto y-axis.
    pub geomean_cost: f64,
    /// Designs of the suite that produced a mapping on this board.
    pub solved: usize,
    /// Suite size.
    pub suite: usize,
}

/// The evaluation suite: `spec.suite` designs drawn from the stream
/// generator (boards of the stream are ignored — the sweep supplies its
/// own). Returns `(name, design)` pairs, reproducible from the seed.
pub fn suite_designs(spec: &SweepSpec) -> Vec<(String, Design)> {
    stream_instances(StreamSpec {
        seed: spec.seed,
        ..StreamSpec::default()
    })
    .take(spec.suite.max(1))
    .map(|inst| (inst.name, inst.design))
    .collect()
}

/// Expand the grid: capacities × counts × widths, each with the spill
/// tier sized for `suite` (one dual-port SRAM per segment of the largest
/// design keeps every point feasible — the sweep compares mapped *cost*,
/// not mappability cliffs).
pub fn arch_grid(spec: &SweepSpec, suite: &[(String, Design)]) -> Vec<ArchPoint> {
    let max_segments = suite
        .iter()
        .map(|(_, d)| d.num_segments())
        .max()
        .unwrap_or(1) as u32;
    let mut grid = Vec::new();
    for &capacity_bits in &spec.capacities {
        for &instances in &spec.bank_counts {
            for &width in &spec.widths {
                let name = format!("bram{capacity_bits}x{instances}w{width}");
                let min_depth = (capacity_bits / u64::from(width.max(1))).max(1) as u32;
                let bram = BankType::new(
                    format!("BRAM-{capacity_bits}b"),
                    instances,
                    2,
                    geometric_ladder(capacity_bits, min_depth),
                    1,
                    1,
                    Placement::OnChip,
                )
                .expect("nonzero swept parameters");
                let spill = BankType::new(
                    "SRAM-spill",
                    max_segments.max(2),
                    2,
                    vec![RamConfig::new(16_384, 16)],
                    2,
                    2,
                    Placement::DirectOffChip,
                )
                .expect("fixed spill tier is valid");
                let board = Board::new(format!("sweep {name}"), vec![bram, spill])
                    .expect("two uniquely-named banks");
                grid.push(ArchPoint {
                    name,
                    capacity_bits,
                    instances,
                    width,
                    board,
                });
            }
        }
    }
    grid
}

/// Geometric mean of per-design costs. Non-positive costs are clamped to
/// a tiny epsilon so one degenerate (zero-cost) design cannot zero out
/// the whole suite score. Empty input returns `NaN`.
pub fn geometric_mean(costs: &[f64]) -> f64 {
    if costs.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = costs.iter().map(|&c| c.max(1e-12).ln()).sum();
    (log_sum / costs.len() as f64).exp()
}

/// Indices of the Pareto-efficient points, minimizing both
/// `geomean_cost` and `total_capacity_bits`, ordered by capacity.
/// Points with a `NaN` score (nothing solved) never make the front.
pub fn pareto_front(scores: &[ArchScore]) -> Vec<usize> {
    let dominates = |a: &ArchScore, b: &ArchScore| {
        a.geomean_cost <= b.geomean_cost
            && a.total_capacity_bits <= b.total_capacity_bits
            && (a.geomean_cost < b.geomean_cost || a.total_capacity_bits < b.total_capacity_bits)
    };
    let mut front: Vec<usize> = (0..scores.len())
        .filter(|&i| {
            !scores[i].geomean_cost.is_nan()
                && !scores.iter().enumerate().any(|(j, other)| {
                    j != i && !other.geomean_cost.is_nan() && dominates(other, &scores[i])
                })
        })
        .collect();
    front.sort_by_key(|&i| (scores[i].total_capacity_bits, scores[i].name.clone()));
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(name: &str, cap: u64, cost: f64) -> ArchScore {
        ArchScore {
            name: name.into(),
            total_capacity_bits: cap,
            geomean_cost: cost,
            solved: 1,
            suite: 1,
        }
    }

    #[test]
    fn grid_spans_the_product_and_is_reproducible() {
        let spec = SweepSpec {
            capacities: vec![2048, 4096],
            bank_counts: vec![2, 4],
            widths: vec![8, 16],
            suite: 3,
            seed: 7,
        };
        let suite = suite_designs(&spec);
        assert_eq!(suite.len(), 3);
        let grid = arch_grid(&spec, &suite);
        assert_eq!(grid.len(), 8);
        let again = arch_grid(&spec, &suite_designs(&spec));
        for (a, b) in grid.iter().zip(&again) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.board, b.board);
        }
        // Names are unique.
        let mut names: Vec<&str> = grid.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn every_grid_point_maps_the_whole_suite() {
        use gmm_core::pipeline::{Mapper, MapperOptions};
        let spec = SweepSpec {
            suite: 3,
            ..SweepSpec::default()
        };
        let suite = suite_designs(&spec);
        let mapper = Mapper::new(MapperOptions::new());
        for point in arch_grid(&spec, &suite) {
            for (name, design) in &suite {
                mapper
                    .map(design, &point.board)
                    .unwrap_or_else(|e| panic!("{name} unmappable on {}: {e}", point.name));
            }
        }
    }

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[5.0]) - 5.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_nan());
        // A zero cost is clamped, not propagated as geomean 0.
        assert!(geometric_mean(&[0.0, 4.0]) > 0.0);
    }

    #[test]
    fn pareto_front_drops_dominated_points() {
        let scores = vec![
            score("cheap-small", 100, 5.0),
            score("dominated", 200, 6.0), // worse cost AND bigger than cheap-small
            score("big-fast", 300, 2.0),
            score("unsolved", 50, f64::NAN),
        ];
        let front = pareto_front(&scores);
        assert_eq!(front, vec![0, 2]);
    }

    #[test]
    fn pareto_keeps_ties_and_orders_by_capacity() {
        let scores = vec![score("b", 200, 3.0), score("a", 100, 4.0)];
        let front = pareto_front(&scores);
        assert_eq!(front, vec![1, 0]);
    }
}
