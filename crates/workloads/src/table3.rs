//! The nine **Table 3** design points.
//!
//! The paper characterizes each point by four complexity parameters: the
//! number of logical segments, and — over the physical side — the total
//! bank count, total port count, and total configuration-setting count.
//! The original designs are not published; this module generates seeded
//! synthetic instances that reproduce each row's four parameters
//! **exactly**, which is all the ILP formulations see.
//!
//! | point | #segments | #banks | #ports | #configs |
//! |-------|-----------|--------|--------|----------|
//! | 1     | 22        | 13     | 25     | 50       |
//! | 2     | 32        | 23     | 45     | 100      |
//! | 3     | 32        | 45     | 77     | 150      |
//! | 4     | 42        | 45     | 77     | 150      |
//! | 5     | 32        | 65     | 105    | 150      |
//! | 6     | 62        | 65     | 105    | 150      |
//! | 7     | 32        | 180    | 265    | 375      |
//! | 8     | 62        | 180    | 265    | 375      |
//! | 9     | 132       | 180    | 265    | 375      |

use crate::random::{board_from_specs, TypeSpec};
use gmm_arch::{Board, Placement};
use gmm_design::{Design, DesignBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One Table 3 row's complexity parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table3Point {
    pub index: usize,
    pub segments: usize,
    pub banks: u32,
    pub ports: u32,
    pub configs: u32,
    /// Execution time of the complete approach in the paper (seconds, SUN
    /// Ultra-30 @ 248 MHz, CPLEX).
    pub paper_complete_secs: f64,
    /// Execution time of the global/detailed approach in the paper.
    pub paper_global_secs: f64,
}

/// The nine rows of Table 3, including the paper's reported CPLEX times.
pub const TABLE3: [Table3Point; 9] = [
    Table3Point { index: 1, segments: 22, banks: 13, ports: 25, configs: 50, paper_complete_secs: 8.1, paper_global_secs: 7.8 },
    Table3Point { index: 2, segments: 32, banks: 23, ports: 45, configs: 100, paper_complete_secs: 29.4, paper_global_secs: 25.3 },
    Table3Point { index: 3, segments: 32, banks: 45, ports: 77, configs: 150, paper_complete_secs: 99.3, paper_global_secs: 50.7 },
    Table3Point { index: 4, segments: 42, banks: 45, ports: 77, configs: 150, paper_complete_secs: 130.4, paper_global_secs: 59.2 },
    Table3Point { index: 5, segments: 32, banks: 65, ports: 105, configs: 150, paper_complete_secs: 172.7, paper_global_secs: 105.1 },
    Table3Point { index: 6, segments: 62, banks: 65, ports: 105, configs: 150, paper_complete_secs: 411.0, paper_global_secs: 140.4 },
    Table3Point { index: 7, segments: 32, banks: 180, ports: 265, configs: 375, paper_complete_secs: 518.3, paper_global_secs: 216.4 },
    Table3Point { index: 8, segments: 62, banks: 180, ports: 265, configs: 375, paper_complete_secs: 1225.0, paper_global_secs: 309.0 },
    Table3Point { index: 9, segments: 132, banks: 180, ports: 265, configs: 375, paper_complete_secs: 2989.0, paper_global_secs: 489.0 },
];

/// Build a board matching `(banks, ports, configs)` exactly.
///
/// Strategy: a dual-ported 5-configuration on-chip type provides the
/// config settings (`configs = 5 * its total ports`); the rest of the bank
/// budget is filled with single-configuration dual- and single-port
/// off-chip RAM so the bank and port totals land exactly.
pub fn table3_board(point: &Table3Point) -> Board {
    assert_eq!(point.configs % 5, 0, "Table 3 config counts are 5-ladders");
    let ports_multi = point.configs / 5;
    // Dual-port multi-config instances a, single-port multi-config b:
    // 2a + b = ports_multi. Then the single-config remainder must satisfy
    // rem_banks <= rem_ports <= 2 * rem_banks.
    let mut chosen = None;
    let mut a = ports_multi / 2;
    loop {
        let b = ports_multi - 2 * a;
        let banks_multi = a + b;
        if banks_multi <= point.banks {
            let rem_banks = point.banks - banks_multi;
            let rem_ports = point.ports as i64 - ports_multi as i64;
            if rem_ports >= rem_banks as i64 && rem_ports <= 2 * rem_banks as i64 {
                chosen = Some((a, b, rem_banks, rem_ports as u32));
                break;
            }
        }
        if a == 0 {
            break;
        }
        a -= 1;
    }
    let (a, b, rem_banks, rem_ports) = chosen.unwrap_or_else(|| {
        panic!(
            "no bank split reproduces point {} (banks {}, ports {}, configs {})",
            point.index, point.banks, point.ports, point.configs
        )
    });
    // Single-config remainder: d dual-port, s single-port.
    let d = rem_ports - rem_banks; // 2d + s = rem_ports, d + s = rem_banks
    let s = rem_banks - d;

    let mut specs = Vec::new();
    if a > 0 {
        specs.push(TypeSpec {
            name: "BlockRAM-DP".into(),
            instances: a,
            ports: 2,
            capacity_bits: 4096,
            multi_config: true,
            read_latency: 1,
            write_latency: 1,
            placement: Placement::OnChip,
        });
    }
    if b > 0 {
        specs.push(TypeSpec {
            name: "BlockRAM-SP".into(),
            instances: b,
            ports: 1,
            capacity_bits: 4096,
            multi_config: true,
            read_latency: 1,
            write_latency: 1,
            placement: Placement::OnChip,
        });
    }
    if d > 0 {
        specs.push(TypeSpec {
            name: "SRAM-DP".into(),
            instances: d,
            ports: 2,
            capacity_bits: 262_144,
            multi_config: false,
            read_latency: 2,
            write_latency: 2,
            placement: Placement::DirectOffChip,
        });
    }
    if s > 0 {
        specs.push(TypeSpec {
            name: "SRAM-SP".into(),
            instances: s,
            ports: 1,
            capacity_bits: 524_288,
            multi_config: false,
            read_latency: 3,
            write_latency: 3,
            placement: Placement::IndirectOffChip { hops: 1 },
        });
    }
    board_from_specs(&format!("table3-point{}", point.index), &specs)
}

/// Build a design with exactly `point.segments` segments whose aggregate
/// port demand stays within the board's budget (so both formulations are
/// feasible, as in the paper's experiments).
///
/// Feasibility is enforced **by construction**, not by distributional
/// luck: every small/medium segment's cheapest placement on a Table 3
/// board consumes one port, while a large segment may need two, so large
/// draws are rationed to half the spare port budget
/// (`ports - segments`). This keeps every RNG stream mappable.
pub fn table3_design(point: &Table3Point, seed: u64) -> Design {
    let mut rng = StdRng::seed_from_u64(seed ^ (point.index as u64) << 32);
    let mut b = DesignBuilder::new(format!("table3-design{}", point.index));
    let spare_ports = point.ports.saturating_sub(point.segments as u32);
    // Each large segment can cost one extra port beyond the 1/segment
    // baseline on both its fragments; budget them in pairs.
    let mut large_left = spare_ports / 2;
    for i in 0..point.segments {
        // Mostly small segments, some medium, a rationed number of large
        // multi-fragment ones.
        let class = rng.gen_range(0..10);
        let (depth, width) = match class {
            0..=5 => (rng.gen_range(16..=256), rng.gen_range(1..=8)),
            6..=8 => (rng.gen_range(256..=2048), rng.gen_range(4..=16)),
            _ if large_left > 0 => {
                large_left -= 1;
                (rng.gen_range(2048..=8192), rng.gen_range(8..=32))
            }
            _ => (rng.gen_range(256..=2048), rng.gen_range(4..=16)),
        };
        b.segment(format!("ds{i}"), depth, width)
            .expect("nonzero dims");
    }
    b.build().expect("nonempty")
}

/// The standard instance (board + design) of one Table 3 point.
pub fn table3_instance(index: usize) -> (Design, Board, Table3Point) {
    let point = TABLE3[index - 1];
    (table3_design(&point, 0xF00D), table3_board(&point), point)
}

/// Point 9 scaled ×16: a Table-3-shaped instance whose global ILP runs
/// for on the order of a *second* on current hardware (the unscaled
/// points solve in milliseconds through the two-phase pipeline). The
/// test suite's standard target for deadline and cancellation races —
/// one place to retune if solver speedups ever make those tests racy.
pub fn slow_table3_instance() -> (Design, Board) {
    let p9 = TABLE3[8];
    let point = Table3Point {
        segments: p9.segments * 16,
        banks: p9.banks * 16,
        ports: p9.ports * 16,
        ..p9
    };
    (table3_design(&point, 0xF00D), table3_board(&point))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_points_reproduce_complexity_parameters() {
        for p in &TABLE3 {
            let board = table3_board(p);
            assert_eq!(board.total_banks(), p.banks, "point {} banks", p.index);
            assert_eq!(board.total_ports(), p.ports, "point {} ports", p.index);
            assert_eq!(
                board.total_config_settings(),
                p.configs,
                "point {} configs",
                p.index
            );
            let design = table3_design(p, 0xF00D);
            assert_eq!(design.num_segments(), p.segments);
        }
    }

    #[test]
    fn paper_times_monotone_in_problem_size() {
        for w in TABLE3.windows(2) {
            assert!(w[1].paper_complete_secs > w[0].paper_complete_secs);
            assert!(w[1].paper_global_secs > w[0].paper_global_secs);
        }
    }

    #[test]
    fn paper_speedup_grows() {
        let first = TABLE3[0].paper_complete_secs / TABLE3[0].paper_global_secs;
        let last = TABLE3[8].paper_complete_secs / TABLE3[8].paper_global_secs;
        assert!(first < 1.1, "small designs nearly tie");
        assert!(last > 6.0, "large designs win by > 6x");
    }

    #[test]
    fn smallest_point_globally_mappable() {
        use gmm_core::pipeline::{Mapper, MapperOptions};
        let (design, board, _) = table3_instance(1);
        let out = Mapper::new(MapperOptions::new()).map(&design, &board).unwrap();
        assert_eq!(out.global.type_of.len(), 22);
        let violations = gmm_core::validate_detailed(&design, &board, &out.detailed);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
