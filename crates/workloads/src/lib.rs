//! # gmm-workloads — workload generators for the mapping experiments
//!
//! Three families:
//!
//! * [`table3`] — seeded synthetic instances reproducing the exact four
//!   complexity parameters of each of the paper's nine Table 3 design
//!   points, with the paper's reported CPLEX times attached;
//! * [`kernels`] — realistic DSP designs (FIR, 2-D convolution, FFT,
//!   blocked matmul, histogram equalization) with access profiles and
//!   phase lifetimes;
//! * [`random`] — parameterised random designs and boards for property
//!   tests and stress runs;
//! * [`stream`] — unbounded seeded streams of scaled-down Table-3-style
//!   instances for load-testing the batch mapping service;
//! * [`sweep`] — architecture-sweep grids (boards × a design suite)
//!   scored by geometric-mean mapped cost, with a Pareto front over
//!   cost vs. total capacity.

pub mod kernels;
pub mod random;
pub mod stream;
pub mod sweep;
pub mod table3;

pub use random::{board_from_specs, random_design, RandomDesignSpec, TypeSpec};
pub use stream::{cycling_instances, stream_instances, CyclingStream, InstanceStream, StreamInstance, StreamSpec};
pub use sweep::{arch_grid, geometric_mean, pareto_front, suite_designs, ArchPoint, ArchScore, SweepSpec};
pub use table3::{
    slow_table3_instance, table3_board, table3_design, table3_instance, Table3Point, TABLE3,
};
