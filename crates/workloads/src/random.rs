//! Parameterised random design and board generation (seeded, reproducible).

use gmm_arch::{BankType, Board, Placement, RamConfig};
use gmm_design::{AccessProfile, Design, DesignBuilder, Lifetime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification of a random design.
#[derive(Debug, Clone)]
pub struct RandomDesignSpec {
    pub segments: usize,
    /// Inclusive depth range.
    pub depth: (u32, u32),
    /// Inclusive width range.
    pub width: (u32, u32),
    /// When `Some(phases)`, segments receive lifetimes drawn from that
    /// many execution phases (enabling storage overlap).
    pub phases: Option<u32>,
    /// Attach non-default access profiles (hot/cold skew).
    pub skewed_profiles: bool,
    pub seed: u64,
}

impl Default for RandomDesignSpec {
    fn default() -> Self {
        RandomDesignSpec {
            segments: 16,
            depth: (16, 1024),
            width: (1, 24),
            phases: None,
            skewed_profiles: false,
            seed: 0xC0FFEE,
        }
    }
}

/// Generate a random design.
pub fn random_design(spec: &RandomDesignSpec) -> Design {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut b = DesignBuilder::new(format!("random-{}", spec.seed));
    for i in 0..spec.segments {
        let depth = rng.gen_range(spec.depth.0..=spec.depth.1);
        let width = rng.gen_range(spec.width.0..=spec.width.1);
        let id = b
            .segment(format!("seg{i}"), depth, width)
            .expect("nonzero dimensions by construction");
        if spec.skewed_profiles {
            // A minority of segments is hot (10x depth accesses).
            let hot = rng.gen_bool(0.25);
            let factor = if hot { 10 } else { 1 };
            b.profile(
                id,
                AccessProfile::new(depth as u64 * factor, depth as u64 * factor),
            );
        }
        if let Some(phases) = spec.phases {
            let phase = rng.gen_range(0..phases);
            // Phase p lives in [p*10, p*10 + 10 + overlap-jitter).
            let start = phase * 10;
            let end = start + 10 + rng.gen_range(0u32..3);
            b.lifetime(id, Lifetime::new(start, end).expect("end > start"));
        }
    }
    b.build().expect("at least one segment")
}

/// Specification of one bank type in a random board.
#[derive(Debug, Clone)]
pub struct TypeSpec {
    pub name: String,
    pub instances: u32,
    pub ports: u32,
    /// Capacity in bits; configurations become the Table-1-style geometric
    /// ladder when `multi_config`, otherwise a single square-ish config.
    pub capacity_bits: u64,
    pub multi_config: bool,
    pub read_latency: u32,
    pub write_latency: u32,
    pub placement: Placement,
}

impl TypeSpec {
    pub fn build(&self) -> BankType {
        let configs = if self.multi_config {
            gmm_arch::geometric_ladder(self.capacity_bits, (self.capacity_bits >> 4).max(1) as u32)
        } else {
            // Single configuration: width 16 unless capacity is tiny.
            let width = 16u32.min(self.capacity_bits as u32);
            vec![RamConfig::new((self.capacity_bits / width as u64) as u32, width)]
        };
        BankType::new(
            self.name.clone(),
            self.instances,
            self.ports,
            configs,
            self.read_latency,
            self.write_latency,
            self.placement,
        )
        .expect("spec parameters are valid")
    }
}

/// Assemble a board from type specs.
pub fn board_from_specs(name: &str, specs: &[TypeSpec]) -> Board {
    Board::new(name, specs.iter().map(TypeSpec::build).collect()).expect("nonempty, unique names")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible() {
        let spec = RandomDesignSpec::default();
        let a = random_design(&spec);
        let b = random_design(&spec);
        assert_eq!(a, b);
        let c = random_design(&RandomDesignSpec {
            seed: 1,
            ..spec.clone()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn dimensions_in_range() {
        let spec = RandomDesignSpec {
            segments: 40,
            depth: (8, 64),
            width: (2, 4),
            ..Default::default()
        };
        let d = random_design(&spec);
        assert_eq!(d.num_segments(), 40);
        for (_, s) in d.iter() {
            assert!((8..=64).contains(&s.depth));
            assert!((2..=4).contains(&s.width));
        }
    }

    #[test]
    fn phases_create_nonconflicting_pairs() {
        let d = random_design(&RandomDesignSpec {
            segments: 30,
            phases: Some(3),
            seed: 7,
            ..Default::default()
        });
        assert!(d.lifetimes().is_some());
        // With 3 well-separated phases, at least one pair must be
        // non-conflicting.
        let mut found = false;
        for i in 0..30 {
            for j in i + 1..30 {
                if !d
                    .conflicts()
                    .conflicts(gmm_design::SegmentId(i), gmm_design::SegmentId(j))
                {
                    found = true;
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn multi_config_ladder() {
        let spec = TypeSpec {
            name: "x".into(),
            instances: 4,
            ports: 2,
            capacity_bits: 4096,
            multi_config: true,
            read_latency: 1,
            write_latency: 1,
            placement: Placement::OnChip,
        };
        let bank = spec.build();
        assert_eq!(bank.num_configs(), 5);
        assert_eq!(bank.capacity_bits(), 4096);
    }

    #[test]
    fn single_config_geometry() {
        let spec = TypeSpec {
            name: "s".into(),
            instances: 1,
            ports: 1,
            capacity_bits: 65536,
            multi_config: false,
            read_latency: 2,
            write_latency: 2,
            placement: Placement::DirectOffChip,
        };
        let bank = spec.build();
        assert_eq!(bank.num_configs(), 1);
        assert_eq!(bank.capacity_bits(), 65536);
    }
}
