//! Endless streams of randomized Table-3-style instances for load testing.
//!
//! The [`table3`](crate::table3) module reproduces the paper's nine design
//! points *exactly* — good for benchmarks, too slow and too fixed for
//! hammering a service. This module emits an unbounded, seeded sequence of
//! *scaled-down* instances with the same physical shape (a multi-config
//! dual-port on-chip type plus single-config off-chip SRAM, segments drawn
//! from the same small/medium/large classes, feasibility enforced by
//! construction through port rationing) but sized so a single solve takes
//! milliseconds, not minutes. That is what a throughput experiment wants:
//! many distinct, quickly-solvable, representative instances.

use crate::random::{board_from_specs, TypeSpec};
use gmm_arch::{Board, Placement};
use gmm_design::{Design, DesignBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of an instance stream.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Inclusive range of segments per instance.
    pub segments: (usize, usize),
    /// Base seed; instance `i` derives its own RNG stream from `seed` and
    /// `i`, so streams are reproducible and instances are independent.
    pub seed: u64,
}

impl Default for StreamSpec {
    fn default() -> Self {
        StreamSpec {
            segments: (6, 14),
            seed: 0xBEEF,
        }
    }
}

/// One generated instance.
#[derive(Debug, Clone)]
pub struct StreamInstance {
    /// `stream-<seed>-<index>`, stable across runs.
    pub name: String,
    pub design: Design,
    pub board: Board,
}

/// Iterator over the stream. Unbounded: cap it with `.take(n)`.
#[derive(Debug, Clone)]
pub struct InstanceStream {
    spec: StreamSpec,
    index: u64,
}

/// Open the stream described by `spec`.
pub fn stream_instances(spec: StreamSpec) -> InstanceStream {
    InstanceStream { spec, index: 0 }
}

impl Iterator for InstanceStream {
    type Item = StreamInstance;

    fn next(&mut self) -> Option<StreamInstance> {
        let i = self.index;
        self.index += 1;
        Some(generate(&self.spec, i))
    }
}

/// Iterator cycling through a bounded pool of distinct instances.
///
/// Where [`InstanceStream`] emits an endless sequence of *distinct*
/// instances (every submission a cache miss), this cycles through the
/// first `distinct` instances of the same stream over and over — the
/// shape a retention soak wants: with a solution-cache capacity `K <
/// distinct`, every lap re-requests keys the LRU has since evicted, so
/// the eviction and re-solve paths are exercised continuously while the
/// total key universe stays bounded and reproducible.
#[derive(Debug, Clone)]
pub struct CyclingStream {
    spec: StreamSpec,
    distinct: u64,
    index: u64,
}

/// Cycle through the first `distinct` instances of `spec`'s stream
/// (`distinct` is clamped to at least 1). Instance `i` of this iterator
/// is byte-for-byte instance `i % distinct` of [`stream_instances`].
pub fn cycling_instances(spec: StreamSpec, distinct: usize) -> CyclingStream {
    CyclingStream {
        spec,
        distinct: (distinct.max(1)) as u64,
        index: 0,
    }
}

impl Iterator for CyclingStream {
    type Item = StreamInstance;

    fn next(&mut self) -> Option<StreamInstance> {
        let i = self.index;
        self.index += 1;
        Some(generate(&self.spec, i % self.distinct))
    }
}

fn generate(spec: &StreamSpec, index: u64) -> StreamInstance {
    // splitmix64 over (seed, index) keeps per-instance streams independent
    // even for adjacent indices.
    let mut state = spec.seed ^ index.wrapping_mul(0x9E3779B97F4A7C15);
    state = (state ^ (state >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    state = (state ^ (state >> 27)).wrapping_mul(0x94D049BB133111EB);
    let mut rng = StdRng::seed_from_u64(state ^ (state >> 31));

    let (lo, hi) = spec.segments;
    let segments = rng.gen_range(lo.max(1)..=hi.max(lo.max(1)));

    // Physical side, Table-3 shaped: on-chip multi-config dual-port
    // BlockRAM plus single-config off-chip SRAM. Feasibility must hold by
    // construction, not by luck: the worst segment drawn below is
    // 4096x24, which on a 16384x16 SRAM-DP reserves 2 columns x 4096
    // rounded rows x 16 bits = 131Kb (half an instance) and consumes 2 of
    // its 2 ports. One dual-port SRAM per segment therefore covers the
    // whole design even if every draw comes out worst-case; the on-chip
    // type and a single-port SRAM exist to give the optimizer real
    // choices, not to carry the load.
    let spare_ports = rng.gen_range(2u32..=6);
    let onchip_dp = rng.gen_range(2u32..=4);
    let offchip_dp = (segments as u32).max(2);
    let offchip_sp = rng.gen_range(1u32..=2);

    let mut specs = vec![TypeSpec {
        name: "BlockRAM-DP".into(),
        instances: onchip_dp,
        ports: 2,
        capacity_bits: 4096,
        multi_config: true,
        read_latency: 1,
        write_latency: 1,
        placement: Placement::OnChip,
    }];
    specs.push(TypeSpec {
        name: "SRAM-DP".into(),
        instances: offchip_dp,
        ports: 2,
        capacity_bits: 262_144,
        multi_config: false,
        read_latency: 2,
        write_latency: 2,
        placement: Placement::DirectOffChip,
    });
    specs.push(TypeSpec {
        name: "SRAM-SP".into(),
        instances: offchip_sp,
        ports: 1,
        capacity_bits: 524_288,
        multi_config: false,
        read_latency: 3,
        write_latency: 3,
        placement: Placement::IndirectOffChip { hops: 1 },
    });
    let name = format!("stream-{:x}-{index}", spec.seed);
    let board = board_from_specs(&name, &specs);

    // Logical side: the Table 3 class mix with large draws rationed to the
    // spare port budget, exactly like `table3_design`.
    let mut large_left = spare_ports / 2;
    let mut b = DesignBuilder::new(name.clone());
    for s in 0..segments {
        let class = rng.gen_range(0..10);
        let (depth, width) = match class {
            0..=5 => (rng.gen_range(16..=256), rng.gen_range(1..=8)),
            6..=8 => (rng.gen_range(256..=1024), rng.gen_range(4..=16)),
            _ if large_left > 0 => {
                large_left -= 1;
                (rng.gen_range(1024..=4096), rng.gen_range(8..=24))
            }
            _ => (rng.gen_range(256..=1024), rng.gen_range(4..=16)),
        };
        b.segment(format!("ds{s}"), depth, width)
            .expect("nonzero dims by construction");
    }
    StreamInstance {
        name,
        design: b.build().expect("segments >= 1 by construction"),
        board,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_reproducible() {
        let a: Vec<StreamInstance> = stream_instances(StreamSpec::default()).take(5).collect();
        let b: Vec<StreamInstance> = stream_instances(StreamSpec::default()).take(5).collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.design, y.design);
            assert_eq!(x.board, y.board);
        }
    }

    #[test]
    fn instances_are_distinct() {
        let v: Vec<StreamInstance> = stream_instances(StreamSpec::default()).take(8).collect();
        for i in 0..v.len() {
            for j in i + 1..v.len() {
                assert_ne!(v[i].design, v[j].design, "instances {i} and {j} collide");
            }
        }
    }

    #[test]
    fn segment_counts_respect_spec() {
        let spec = StreamSpec {
            segments: (3, 5),
            seed: 7,
        };
        for inst in stream_instances(spec).take(20) {
            assert!((3..=5).contains(&inst.design.num_segments()));
        }
    }

    #[test]
    fn every_streamed_instance_is_mappable() {
        use gmm_core::pipeline::{Mapper, MapperOptions};
        let mapper = Mapper::new(MapperOptions::new());
        for inst in stream_instances(StreamSpec::default()).take(25) {
            let out = mapper
                .map(&inst.design, &inst.board)
                .unwrap_or_else(|e| panic!("{} unmappable: {e}", inst.name));
            assert_eq!(out.global.type_of.len(), inst.design.num_segments());
        }
    }

    #[test]
    fn cycling_stream_repeats_the_pool_exactly() {
        let spec = StreamSpec::default();
        let pool: Vec<StreamInstance> = stream_instances(spec.clone()).take(3).collect();
        let cycled: Vec<StreamInstance> = cycling_instances(spec, 3).take(7).collect();
        for (i, inst) in cycled.iter().enumerate() {
            let expect = &pool[i % 3];
            assert_eq!(inst.name, expect.name, "lap {} diverged", i / 3);
            assert_eq!(inst.design, expect.design);
            assert_eq!(inst.board, expect.board);
        }
    }

    #[test]
    fn cycling_stream_clamps_distinct_to_one() {
        let v: Vec<StreamInstance> = cycling_instances(StreamSpec::default(), 0).take(3).collect();
        assert_eq!(v[0].design, v[1].design);
        assert_eq!(v[1].design, v[2].design);
    }

    #[test]
    fn boards_are_table3_shaped() {
        for inst in stream_instances(StreamSpec::default()).take(6) {
            // Multi-config on-chip type present, off-chip single-config too.
            assert!(inst.board.num_types() >= 2);
            let ports = inst.board.total_ports();
            assert!(
                ports as usize >= inst.design.num_segments(),
                "port budget must cover one port per segment"
            );
        }
    }
}
