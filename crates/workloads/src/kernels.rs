//! Realistic DSP/image-processing workloads — the application class the
//! paper's introduction motivates ("with signal and image processing
//! applications, memory mapping becomes a crucial step").
//!
//! Each kernel returns a [`Design`] with meaningful segments, access
//! profiles derived from the algorithm's operation counts, and lifetimes
//! reflecting its phase structure.

use gmm_design::{AccessProfile, Design, DesignBuilder, Lifetime};

/// An N-tap FIR filter over a block of samples: coefficient ROM, sliding
/// window, input and output buffers.
pub fn fir(taps: u32, block: u32) -> Design {
    let mut b = DesignBuilder::new(format!("fir{taps}"));
    let coeffs = b.segment("coeffs", taps, 16).unwrap();
    let window = b.segment("window", taps, 16).unwrap();
    let input = b.segment("input", block, 16).unwrap();
    let output = b.segment("output", block, 18).unwrap();
    // Per output sample: taps coefficient reads, taps window reads + 1
    // write, 1 input read, 1 output write.
    let per = block as u64;
    b.profile(coeffs, AccessProfile::new(per * taps as u64, taps as u64));
    b.profile(window, AccessProfile::new(per * taps as u64, per));
    b.profile(input, AccessProfile::new(per, per));
    b.profile(output, AccessProfile::new(0, per));
    // Everything is live together (streaming).
    for id in [coeffs, window, input, output] {
        b.lifetime(id, Lifetime::new(0, 100).unwrap());
    }
    b.build().unwrap()
}

/// 2-D convolution of a `w x h` 8-bit image with a `k x k` kernel:
/// line buffers, kernel ROM, input tile, output tile.
pub fn conv2d(w: u32, h: u32, k: u32) -> Design {
    let mut b = DesignBuilder::new(format!("conv2d-{w}x{h}-k{k}"));
    let image = b.segment("image", w * h / 4, 32).unwrap(); // packed words
    let kernel = b.segment("kernel", k * k, 12).unwrap();
    // k-1 line buffers of one image row each.
    let mut lines = Vec::new();
    for i in 0..k.saturating_sub(1) {
        lines.push(b.segment(format!("line{i}"), w, 8).unwrap());
    }
    let out = b.segment("result", w * h / 4, 32).unwrap();
    let pixels = (w * h) as u64;
    b.profile(image, AccessProfile::new(pixels / 4, pixels / 4));
    b.profile(kernel, AccessProfile::new(pixels * (k * k) as u64, (k * k) as u64));
    for &l in &lines {
        b.profile(l, AccessProfile::new(pixels, pixels));
    }
    b.profile(out, AccessProfile::new(0, pixels / 4));
    let all: Vec<_> = [image, kernel, out].into_iter().chain(lines).collect();
    for id in all {
        b.lifetime(id, Lifetime::new(0, 100).unwrap());
    }
    b.build().unwrap()
}

/// In-place radix-2 FFT of size `n`: twiddle ROM plus two ping-pong
/// buffers with phase-disjoint scratch.
pub fn fft(n: u32) -> Design {
    assert!(n.is_power_of_two(), "FFT size must be a power of two");
    let stages = n.trailing_zeros() as u64;
    let mut b = DesignBuilder::new(format!("fft{n}"));
    let twiddle = b.segment("twiddle", n / 2, 32).unwrap();
    let ping = b.segment("ping", n, 32).unwrap();
    let pong = b.segment("pong", n, 32).unwrap();
    let bitrev = b.segment("bitrev_scratch", n, 16).unwrap();
    let butterflies = stages * (n as u64 / 2);
    b.profile(twiddle, AccessProfile::new(butterflies, n as u64 / 2));
    b.profile(ping, AccessProfile::new(butterflies, butterflies));
    b.profile(pong, AccessProfile::new(butterflies, butterflies));
    b.profile(bitrev, AccessProfile::new(n as u64, n as u64));
    // Bit-reversal scratch is only live during the input permutation, so
    // it may overlap with the output half of the ping-pong pair.
    b.lifetime(twiddle, Lifetime::new(0, 100).unwrap());
    b.lifetime(ping, Lifetime::new(0, 100).unwrap());
    b.lifetime(pong, Lifetime::new(10, 100).unwrap());
    b.lifetime(bitrev, Lifetime::new(0, 10).unwrap());
    b.build().unwrap()
}

/// Blocked matrix multiply `C = A * B` of `n x n` 16-bit matrices with
/// `t x t` tiles.
pub fn matmul(n: u32, tile: u32) -> Design {
    let mut b = DesignBuilder::new(format!("matmul{n}-t{tile}"));
    let a = b.segment("A", n * n, 16).unwrap();
    let bm = b.segment("B", n * n, 16).unwrap();
    let c = b.segment("C", n * n, 32).unwrap();
    let tile_a = b.segment("tileA", tile * tile, 16).unwrap();
    let tile_b = b.segment("tileB", tile * tile, 16).unwrap();
    let acc = b.segment("acc", tile * tile, 40).unwrap();
    let n3 = (n as u64).pow(3);
    let n2 = (n as u64).pow(2);
    b.profile(a, AccessProfile::new(n3 / tile as u64, n2));
    b.profile(bm, AccessProfile::new(n3 / tile as u64, n2));
    b.profile(c, AccessProfile::new(n2, n2));
    b.profile(tile_a, AccessProfile::new(n3, n3 / tile as u64));
    b.profile(tile_b, AccessProfile::new(n3, n3 / tile as u64));
    b.profile(acc, AccessProfile::new(n3, n3));
    for id in [a, bm, c, tile_a, tile_b, acc] {
        b.lifetime(id, Lifetime::new(0, 100).unwrap());
    }
    b.build().unwrap()
}

/// Histogram equalization: image pass 1 builds the histogram, pass 2
/// applies the remap table — classic two-phase lifetimes.
pub fn histogram(w: u32, h: u32, bins: u32) -> Design {
    let mut b = DesignBuilder::new(format!("histeq-{w}x{h}"));
    let image = b.segment("image", w * h / 4, 32).unwrap();
    let hist = b.segment("histogram", bins, 24).unwrap();
    let cdf = b.segment("cdf", bins, 24).unwrap();
    let remap = b.segment("remap", bins, 8).unwrap();
    let out = b.segment("out_image", w * h / 4, 32).unwrap();
    let pixels = (w * h) as u64;
    b.profile(image, AccessProfile::new(pixels / 2, pixels / 4));
    b.profile(hist, AccessProfile::new(pixels + bins as u64, pixels + bins as u64));
    b.profile(cdf, AccessProfile::new(bins as u64 * 2, bins as u64));
    b.profile(remap, AccessProfile::new(pixels, bins as u64));
    b.profile(out, AccessProfile::new(0, pixels / 4));
    // Phase 1 [0,10): image + histogram. Phase 2 [10,20): cdf/remap built.
    // Phase 3 [20,30): image remapped to out.
    b.lifetime(image, Lifetime::new(0, 30).unwrap());
    b.lifetime(hist, Lifetime::new(0, 15).unwrap());
    b.lifetime(cdf, Lifetime::new(10, 20).unwrap());
    b.lifetime(remap, Lifetime::new(15, 30).unwrap());
    b.lifetime(out, Lifetime::new(20, 30).unwrap());
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_structure() {
        let d = fir(16, 1024);
        assert_eq!(d.num_segments(), 4);
        let coeffs = d.find("coeffs").unwrap();
        // Coefficients are read far more than written.
        let p = d.profile(coeffs);
        assert!(p.reads > 100 * p.writes);
    }

    #[test]
    fn conv2d_line_buffers() {
        let d = conv2d(64, 64, 3);
        assert_eq!(d.num_segments(), 3 + 2); // image, kernel, out + 2 lines
        assert!(d.find("line0").is_some());
        assert!(d.find("line1").is_some());
        assert!(d.find("line2").is_none());
    }

    #[test]
    fn fft_phase_overlap() {
        let d = fft(1024);
        let bitrev = d.find("bitrev_scratch").unwrap();
        let pong = d.find("pong").unwrap();
        // Scratch dies before pong is born: they may share storage.
        assert!(!d.conflicts().conflicts(bitrev, pong));
        let ping = d.find("ping").unwrap();
        assert!(d.conflicts().conflicts(bitrev, ping));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_pow2() {
        fft(1000);
    }

    #[test]
    fn histogram_phases() {
        let d = histogram(128, 128, 256);
        let hist = d.find("histogram").unwrap();
        let out = d.find("out_image").unwrap();
        assert!(!d.conflicts().conflicts(hist, out));
    }

    #[test]
    fn matmul_totals() {
        let d = matmul(64, 8);
        assert_eq!(d.num_segments(), 6);
        assert!(d.total_bits() > 3 * 64 * 64 * 16);
    }

    #[test]
    fn kernels_map_on_prototyping_board() {
        use gmm_core::pipeline::{Mapper, MapperOptions};
        let board = gmm_arch::Board::prototyping("XCV1000", 6).unwrap();
        let mapper = Mapper::new(MapperOptions::new());
        for design in [fir(16, 512), fft(1024), histogram(64, 64, 256)] {
            let out = mapper.map(&design, &board).unwrap_or_else(|e| {
                panic!("{} failed to map: {e}", design.num_segments())
            });
            let v = gmm_core::validate_detailed(&design, &board, &out.detailed);
            assert!(v.is_empty(), "{v:?}");
        }
    }
}
