//! Property tests for the gmm-heur greedy mapper and the solve-mode
//! portfolio.
//!
//! Three contracts are pinned down:
//!
//! * **feasibility** — every greedy mapping passes the shared detailed
//!   validator and replays cleanly in the `gmm-sim` access simulator;
//! * **bounding** — the greedy objective is an upper bound: never below
//!   the ILP's proven optimum on the same instance;
//! * **transparency** — the portfolio changes *how fast* a solve
//!   converges, never *what* an `Optimal` solve returns: payloads stay
//!   byte-identical to ILP-only solves, and a deadline'd portfolio solve
//!   degrades to `Feasible` carrying the heuristic incumbent instead of
//!   `DeadlineExceeded` empty-handed.

use std::time::Duration;

use gmm_api::{MapRequest, Termination};
use gmm_arch::Board;
use gmm_heur::{greedy_map, greedy_solve, HeurOptions, SolveMode};
use gmm_service::{canonical_json, JobConfig, JobQueue, JobSolution, JobState, QueueOptions};
use gmm_sim::{simulate_mapping, Trace};
use gmm_workloads::{random_design, slow_table3_instance, stream_instances, RandomDesignSpec, StreamSpec};

fn instance(seed: u64, segments: usize) -> (gmm_design::Design, Board) {
    let design = random_design(&RandomDesignSpec {
        segments,
        depth: (16, 512),
        width: (1, 8),
        seed,
        ..RandomDesignSpec::default()
    });
    (design, Board::prototyping("XCV300", 2).unwrap())
}

fn payload(report: &gmm_api::MapReport) -> String {
    let outcome = report.outcome.as_ref().expect("report has an outcome");
    canonical_json(&JobSolution {
        global: outcome.global.clone(),
        detailed: outcome.detailed.clone(),
    })
}

#[test]
fn greedy_mappings_validate_and_replay_in_the_simulator() {
    for seed in [1u64, 12, 23, 34, 45, 56] {
        let (design, board) = instance(seed, 8);
        let m = greedy_map(&design, &board, &HeurOptions::new())
            .unwrap_or_else(|e| panic!("seed {seed}: greedy must map this instance: {e}"));
        let violations = gmm_core::validate_detailed(&design, &board, &m.detailed);
        assert!(
            violations.is_empty(),
            "seed {seed}: greedy mapping violates the shared validator: {violations:?}"
        );
        // Replay a deterministic random trace through the placed
        // fragments: every access must decode to exactly one instance.
        let trace = Trace::random(&design, 256, seed);
        simulate_mapping(&design, &board, &m.detailed, &trace)
            .unwrap_or_else(|e| panic!("seed {seed}: greedy mapping does not replay: {e}"));
    }
}

#[test]
fn greedy_objective_never_beats_the_proven_optimum() {
    for seed in [2u64, 13, 24, 35, 46] {
        let (design, board) = instance(seed, 8);
        let sol = greedy_solve(&design, &board, &HeurOptions::new())
            .unwrap_or_else(|e| panic!("seed {seed}: greedy must solve: {e}"));
        let ilp = MapRequest::new(design, board).execute().expect("ilp solve");
        assert_eq!(ilp.termination, Termination::Optimal, "seed {seed}");
        let optimal = ilp.objective.expect("optimal report has an objective");
        assert!(
            sol.objective >= optimal - 1e-6 * optimal.abs().max(1.0),
            "seed {seed}: greedy objective {} below the proven optimum {optimal}",
            sol.objective
        );
    }
}

#[test]
fn portfolio_optimal_payloads_are_byte_identical_to_ilp() {
    for inst in stream_instances(StreamSpec::default()).take(6) {
        let ilp = MapRequest::new(inst.design.clone(), inst.board.clone())
            .solve_mode(SolveMode::Ilp)
            .execute()
            .expect("ilp solve");
        let portfolio = MapRequest::new(inst.design.clone(), inst.board.clone())
            .solve_mode(SolveMode::Portfolio)
            .execute()
            .expect("portfolio solve");
        assert_eq!(ilp.termination, Termination::Optimal, "{}", inst.name);
        assert_eq!(portfolio.termination, Termination::Optimal, "{}", inst.name);
        assert!(
            portfolio.heuristic_objective.is_some(),
            "{}: the portfolio must record its greedy objective",
            inst.name
        );
        assert!(
            portfolio.incumbent_seeded >= 1,
            "{}: a feasible greedy solution must seed the incumbent",
            inst.name
        );
        assert_eq!(portfolio.objective, ilp.objective, "{}", inst.name);
        assert_eq!(
            payload(&portfolio),
            payload(&ilp),
            "{}: the portfolio changed the optimal payload bytes",
            inst.name
        );
    }
}

#[test]
fn heuristic_mode_is_feasible_and_validates() {
    for inst in stream_instances(StreamSpec::default()).take(4) {
        let report = MapRequest::new(inst.design.clone(), inst.board.clone())
            .solve_mode(SolveMode::Heuristic)
            .execute()
            .expect("heuristic solve");
        assert_eq!(report.termination, Termination::Feasible, "{}", inst.name);
        let outcome = report.outcome.as_ref().expect("feasible report has an outcome");
        assert!(
            gmm_core::validate_detailed(&inst.design, &inst.board, &outcome.detailed).is_empty(),
            "{}: heuristic outcome must validate",
            inst.name
        );
        assert_eq!(report.heuristic_objective, report.objective, "{}", inst.name);
    }
}

#[test]
fn deadlined_portfolio_degrades_to_feasible_with_the_heuristic_incumbent() {
    // The scaled point-9 instance runs for ~a second; a 1 ms deadline
    // fires long before branch-and-bound proves anything.
    let (design, board) = slow_table3_instance();
    let tight = Duration::from_millis(1);

    let portfolio = MapRequest::new(design.clone(), board.clone())
        .solve_mode(SolveMode::Portfolio)
        .deadline(tight)
        .execute()
        .expect("portfolio solve");
    assert_eq!(
        portfolio.termination,
        Termination::Feasible,
        "a deadline'd portfolio solve must fall back to the heuristic incumbent"
    );
    let h = portfolio
        .heuristic_objective
        .expect("the fallback records the greedy objective");
    let outcome = portfolio.outcome.as_ref().expect("feasible carries a mapping");
    assert!(
        gmm_core::validate_detailed(&design, &board, &outcome.detailed).is_empty(),
        "the deadline fallback must still validate"
    );
    let delivered = portfolio.objective.expect("feasible reports its objective");
    assert!(
        delivered <= h + 1e-6 * h.abs().max(1.0),
        "the delivered incumbent ({delivered}) must be at least as good as the seed ({h})"
    );

    // Reference: ILP-only under the same deadline has nothing to offer.
    let ilp = MapRequest::new(design, board)
        .solve_mode(SolveMode::Ilp)
        .deadline(tight)
        .execute()
        .expect("ilp solve");
    assert_eq!(ilp.termination, Termination::DeadlineExceeded);
}

#[test]
fn portfolio_stream_seeds_incumbents_through_the_queue() {
    let queue = JobQueue::new({
        let mut o = QueueOptions::default();
        o.workers = 2;
        o
    });
    let config = JobConfig {
        solve_mode: SolveMode::Portfolio,
        ..JobConfig::default()
    };
    let tickets: Vec<_> = stream_instances(StreamSpec::default())
        .take(8)
        .map(|inst| queue.submit(inst.design, inst.board, config.clone()))
        .collect();
    for t in &tickets {
        let out = queue.wait(t.id, Duration::from_secs(120)).unwrap();
        assert_eq!(out.state, JobState::Done);
    }
    let s = queue.stats();
    assert_eq!(s.heuristic_solved, 8, "every stream solve is greedy-mappable: {s:?}");
    assert!(
        s.heuristic_seeded > 0,
        "the portfolio fast path never engaged on the stream workload: {s:?}"
    );
    assert_eq!(s.heuristic_infeasible, 0, "{s:?}");
    queue.shutdown();
}
