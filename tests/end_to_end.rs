//! End-to-end property tests: random designs on random boards, through
//! the full global → detailed pipeline, checked against every structural
//! invariant and replayed on the simulator.

use fpga_memmap::prelude::*;
use fpga_memmap::workloads::{board_from_specs, random_design, RandomDesignSpec, TypeSpec};
use gmm_sim::check_adder_free;
use proptest::prelude::*;

/// A random two-or-three-type board with 1- and 2-port banks only (the
/// regime where the paper's pre-processing guarantees detailed success).
fn board_strategy() -> impl Strategy<Value = Board> {
    (2u32..10, 1u32..6, 0u32..4, any::<bool>()).prop_map(|(onchip, sram, bus, dual_sram)| {
        let mut specs = vec![TypeSpec {
            name: "OnChip".into(),
            instances: onchip,
            ports: 2,
            capacity_bits: 4096,
            multi_config: true,
            read_latency: 1,
            write_latency: 1,
            placement: Placement::OnChip,
        }];
        if sram > 0 {
            specs.push(TypeSpec {
                name: "SRAM".into(),
                instances: sram,
                ports: if dual_sram { 2 } else { 1 },
                capacity_bits: 262_144,
                multi_config: false,
                read_latency: 2,
                write_latency: 2,
                placement: Placement::DirectOffChip,
            });
        }
        if bus > 0 {
            specs.push(TypeSpec {
                name: "BusRAM".into(),
                instances: bus,
                ports: 1,
                capacity_bits: 524_288,
                multi_config: false,
                read_latency: 3,
                write_latency: 3,
                placement: Placement::IndirectOffChip { hops: 1 },
            });
        }
        board_from_specs("random", &specs)
    })
}

fn design_strategy() -> impl Strategy<Value = Design> {
    (1usize..14, any::<u64>(), prop::option::of(1u32..4)).prop_map(|(segments, seed, phases)| {
        random_design(&RandomDesignSpec {
            segments,
            depth: (4, 900),
            width: (1, 40),
            phases,
            skewed_profiles: seed % 2 == 0,
            seed,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline guarantee: whenever the global mapper finds an
    /// assignment on a 1/2-ported board, detailed mapping succeeds with
    /// zero retries and yields a violation-free, adder-free placement.
    #[test]
    fn pipeline_invariants(design in design_strategy(), board in board_strategy()) {
        let mapper = Mapper::new(MapperOptions::new());
        let out = match mapper.map(&design, &board) {
            Ok(out) => out,
            // Small boards may genuinely not fit the design.
            Err(MapError::Infeasible) | Err(MapError::Unmappable(_)) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        };

        // Paper §4.1: pre-processing guarantees detailed success for
        // <=2-ported banks, so no retries ever happen.
        prop_assert_eq!(out.stats.retries, 0, "retry on a <=2-port board");

        // Structural invariants.
        let violations = validate_detailed(&design, &board, &out.detailed);
        prop_assert!(violations.is_empty(), "violations: {:?}", violations);

        // Figure 3's no-adder guarantee.
        let adders = check_adder_free(&out.detailed);
        prop_assert!(adders.is_empty(), "adders needed: {:?}", adders);

        // Every fragment lives on the globally-assigned type.
        for f in &out.detailed.fragments {
            prop_assert_eq!(f.bank_type, out.global.type_of[f.segment.0]);
        }

        // The mapping must replay every access of the canonical trace.
        let trace = Trace::from_profiles(&design);
        // Cap the replay cost for huge profiles.
        if trace.len() <= 200_000 {
            let report = simulate_mapping(&design, &board, &out.detailed, &trace).unwrap();
            prop_assert_eq!(
                report.per_segment.iter().map(|s| s.accesses).sum::<u64>(),
                trace.len() as u64
            );
        }
    }

    /// Overlap-aware mapping is never worse than overlap-blind mapping
    /// (it only removes constraints).
    #[test]
    fn overlap_awareness_monotone(design in design_strategy(), board in board_strategy()) {
        let blind = Mapper::new(MapperOptions::new()).map(&design, &board);
        let mut opts = MapperOptions::new();
        opts.overlap_aware = true;
        let aware = Mapper::new(opts).map(&design, &board);
        match (blind, aware) {
            (Ok(b), Ok(a)) => {
                let w = CostWeights::default();
                prop_assert!(
                    a.cost.weighted(&w) <= b.cost.weighted(&w) + 1e-6,
                    "overlap-aware cost {} worse than blind {}",
                    a.cost.weighted(&w), b.cost.weighted(&w)
                );
            }
            (Err(_), Ok(_)) => {} // relaxation made it feasible: fine
            (Ok(_), Err(e)) => {
                return Err(TestCaseError::fail(format!(
                    "overlap-awareness broke feasibility: {e}"
                )));
            }
            (Err(_), Err(_)) => {}
        }
    }
}

/// Deterministic regression: the same inputs give the same mapping cost
/// across runs (serial backend).
#[test]
fn pipeline_is_deterministic() {
    let design = random_design(&RandomDesignSpec {
        segments: 12,
        seed: 99,
        ..RandomDesignSpec::default()
    });
    let board = Board::prototyping("XCV400", 3).unwrap();
    let mapper = Mapper::new(MapperOptions::new());
    let a = mapper.map(&design, &board).unwrap();
    let b = mapper.map(&design, &board).unwrap();
    assert_eq!(a.global.type_of, b.global.type_of);
    assert_eq!(a.detailed.fragments.len(), b.detailed.fragments.len());
}
