//! The full §3.2→§3.3 front end: task graph → ASAP schedule → lifetimes →
//! conflicts → overlap-aware mapping. Demonstrates the paper's point that
//! life-cycle analysis "could further improve the memory mapping since
//! segments that can overlap could be placed in the same storage area".

use fpga_memmap::prelude::*;
use gmm_design::{TaskGraph, TaskId};

/// A two-phase application: phase 1 fills a working buffer from the
/// input, phase 2 reduces it into an output. The working buffer and the
/// output never coexist with the phase-1 scratch.
fn build_design_with_taskgraph() -> Design {
    let mut b = DesignBuilder::new("staged");
    let input = b.segment("input", 512, 8).unwrap();
    let scratch = b.segment("scratch", 512, 8).unwrap();
    let work = b.segment("work", 512, 8).unwrap();
    let output = b.segment("output", 512, 8).unwrap();

    let mut g = TaskGraph::new();
    let t_load = g
        .task("load", 4, vec![input], vec![scratch], vec![])
        .unwrap();
    let t_transform = g
        .task("transform", 6, vec![scratch], vec![work], vec![t_load])
        .unwrap();
    let _t_reduce: TaskId = g
        .task("reduce", 3, vec![work], vec![output], vec![t_transform])
        .unwrap();

    let schedule = g.schedule_asap().unwrap();
    assert_eq!(schedule.makespan, 13);
    let lifetimes = g.lifetimes(&schedule, 4).unwrap();
    for (i, lt) in lifetimes.iter().enumerate() {
        b.lifetime(SegmentId(i), *lt);
    }
    b.build().unwrap()
}

#[test]
fn taskgraph_lifetimes_enable_overlap() {
    let design = build_design_with_taskgraph();
    let scratch = design.find("scratch").unwrap();
    let output = design.find("output").unwrap();
    let work = design.find("work").unwrap();
    // Scratch dies when transform finishes (step 10); output is born at
    // step 10: they may share storage.
    assert!(!design.conflicts().conflicts(scratch, output));
    // Scratch and work overlap during transform.
    assert!(design.conflicts().conflicts(scratch, work));
}

#[test]
fn overlap_aware_mapping_fits_where_blind_spills() {
    let design = build_design_with_taskgraph();
    // A board with exactly enough on-chip space for three live segments
    // (each 512x8 = 4096 bits, one BlockRAM instance) plus slow off-chip
    // spill space.
    let board = Board::new(
        "tight-onchip",
        vec![
            BankType::new(
                "onchip",
                3,
                2,
                vec![RamConfig::new(4096, 1), RamConfig::new(512, 8)],
                1,
                1,
                Placement::OnChip,
            )
            .unwrap(),
            gmm_arch::devices::off_chip::zbt_sram("spill", 4, 262_144, 32),
        ],
    )
    .unwrap();

    let blind = Mapper::new(MapperOptions::new()).map(&design, &board).unwrap();
    let mut opts = MapperOptions::new();
    opts.overlap_aware = true;
    let aware = Mapper::new(opts).map(&design, &board).unwrap();

    let w = CostWeights::default();
    assert!(
        aware.cost.weighted(&w) <= blind.cost.weighted(&w),
        "lifetime knowledge can only help"
    );
    // All mappings still validate under the base (conflict-aware) rules.
    assert!(validate_detailed(&design, &board, &aware.detailed).is_empty());
    assert!(validate_detailed(&design, &board, &blind.detailed).is_empty());
}

#[test]
fn simulated_behaviour_matches_schedule_traffic() {
    use gmm_sim::{simulate_mapping, Trace};
    let design = build_design_with_taskgraph();
    let board = Board::prototyping("XCV300", 2).unwrap();
    let out = Mapper::new(MapperOptions::new()).map(&design, &board).unwrap();
    let trace = Trace::from_profiles(&design);
    let report = simulate_mapping(&design, &board, &out.detailed, &trace).unwrap();
    // Every segment of the staged pipeline sees traffic.
    for s in &report.per_segment {
        assert!(s.accesses > 0);
    }
}
