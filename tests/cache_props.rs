//! Property test for the solution cache: a cache hit must be
//! indistinguishable from the cold solve it replaced.
//!
//! For randomized `workloads::random` instances, three payloads must be
//! byte-identical: a direct `Mapper` solve outside the service, the
//! queue's cold solve, and the queue's cache hit on resubmission.

use std::time::Duration;

use gmm_arch::Board;
use gmm_core::pipeline::{Mapper, MapperOptions};
use gmm_service::{canonical_json, JobConfig, JobQueue, JobSolution, JobState, QueueOptions};
use gmm_workloads::{random_design, RandomDesignSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cache_hit_is_byte_identical_to_cold_solve(
        seed in 0u64..100_000,
        segments in 4usize..10,
        srams in 1u32..3,
    ) {
        let design = random_design(&RandomDesignSpec {
            segments,
            depth: (16, 512),
            width: (1, 8),
            seed,
            ..RandomDesignSpec::default()
        });
        let board = Board::prototyping("XCV300", srams).unwrap();

        // Reference: a solve with no service layer at all. The queue's
        // default JobConfig must configure the mapper identically.
        let reference = Mapper::new(MapperOptions::new())
            .map(&design, &board)
            .expect("small instances on a prototyping board are mappable");
        let reference_json = canonical_json(&JobSolution {
            global: reference.global,
            detailed: reference.detailed,
        });

        let queue = JobQueue::new({
            let mut o = QueueOptions::default();
            o.workers = 1;
            o.cache_shards = 4;
            o
        });

        // Cold solve through the queue.
        let cold = queue.submit(design.clone(), board.clone(), JobConfig::default());
        prop_assert!(!cold.cached);
        let cold_out = queue.wait(cold.id, Duration::from_secs(120)).unwrap();
        prop_assert_eq!(cold_out.state, JobState::Done);
        let cold_json = cold_out.solution_json.unwrap().solution_json.clone();
        prop_assert_eq!(
            &cold_json, &reference_json,
            "queue solve differs from direct solve"
        );

        // Cache hit on resubmission.
        let warm = queue.submit(design, board, JobConfig::default());
        prop_assert!(warm.cached, "identical resubmission must hit the cache");
        let warm_out = queue.outcome(warm.id).unwrap();
        prop_assert_eq!(warm_out.state, JobState::Done);
        let warm_json = warm_out.solution_json.unwrap().solution_json.clone();
        prop_assert_eq!(&warm_json, &cold_json, "cache hit not byte-identical");

        queue.shutdown();
    }
}
