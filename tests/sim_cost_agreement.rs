//! Cross-validation of the ILP cost model against the cycle simulator:
//! if the cost model says mapping A is cheaper than mapping B (in pure
//! latency terms), the simulator must agree on the replayed trace.

use fpga_memmap::prelude::*;
use gmm_core::global::NoGood;
use gmm_core::{map_detailed, solve_global, CostMatrix, PreTable};
use gmm_sim::Trace;

fn world() -> (Design, Board) {
    let mut b = DesignBuilder::new("agreement");
    b.segment("hot_small", 128, 8).unwrap();
    b.segment("warm_mid", 1024, 16).unwrap();
    b.segment("cold_big", 8192, 32).unwrap();
    let design = b.build().unwrap();
    let board = Board::hierarchical("XCV1000").unwrap();
    (design, board)
}

/// Enumerate several feasible global assignments by banning types, and
/// check cost-vs-simulation ordering across all pairs.
#[test]
fn latency_cost_ordering_matches_simulation() {
    let (design, board) = world();
    let pre = PreTable::build(&design, &board);
    let matrix = CostMatrix::build(&design, &board, &pre);
    let weights = CostWeights::latency_only();
    let backend = SolverBackend::default();

    // Assignment variants: optimal, each segment individually forced off
    // the on-chip type, everything forced off-chip.
    let onchip = gmm_arch::BankTypeId(0);
    let mut variants: Vec<Vec<NoGood>> = vec![vec![]];
    for (id, _) in design.iter() {
        variants.push(vec![NoGood {
            bank_type: onchip,
            segments: vec![id],
        }]);
    }
    variants.push(
        design
            .iter()
            .map(|(id, _)| NoGood {
                bank_type: onchip,
                segments: vec![id],
            })
            .collect(),
    );

    let trace = Trace::from_profiles(&design);
    let mut results: Vec<(f64, u64)> = Vec::new();
    for no_goods in &variants {
        let Ok(global) = solve_global(
            &design, &board, &pre, &matrix, &weights, &backend, false, no_goods,
        ) else {
            continue;
        };
        let detailed = map_detailed(&design, &board, &pre, &global).unwrap();
        let report = simulate_mapping(&design, &board, &detailed, &trace).unwrap();
        results.push((global.cost.latency, report.total_latency));
    }
    assert!(results.len() >= 3, "need several variants to compare");

    // Pairwise: strictly cheaper cost implies no-slower simulation; equal
    // costs imply equal simulated latency (same latency classes).
    for (i, &(ca, sa)) in results.iter().enumerate() {
        for &(cb, sb) in results.iter().skip(i + 1) {
            if (ca - cb).abs() < 1e-9 {
                assert_eq!(sa, sb, "equal costs must simulate equally");
            } else if ca < cb {
                assert!(sa <= sb, "cost {ca} < {cb} but sim {sa} > {sb}");
            } else {
                assert!(sb <= sa, "cost {cb} < {ca} but sim {sb} > {sa}");
            }
        }
    }

    // The unconstrained optimum must be the simulation's best, too.
    let (best_cost, best_sim) = results[0];
    for &(c, s) in &results[1..] {
        assert!(best_cost <= c + 1e-9);
        assert!(best_sim <= s);
    }
}

/// The latency cost model is *exact* for contention-free replays: the
/// simulator's total latency equals the model's latency term when every
/// segment has its own ports and the pin penalty is folded in.
#[test]
fn latency_cost_is_exact_without_contention() {
    let (design, board) = world();
    let out = Mapper::new(MapperOptions::new()).map(&design, &board).unwrap();
    let trace = Trace::from_profiles(&design);
    let report = simulate_mapping(&design, &board, &out.detailed, &trace).unwrap();
    // Model: sum over segments of reads*RL + writes*WL, plus pins/2 per
    // access (the machine folds hop cycles into each access).
    let mut expect = 0u64;
    for (id, _) in design.iter() {
        let t = out.global.type_of[id.0];
        let bank = board.bank(t);
        let p = design.profile(id);
        let hop = (bank.pins_traversed() / 2) as u64;
        expect += p.reads * (bank.read_latency as u64 + hop)
            + p.writes * (bank.write_latency as u64 + hop);
    }
    assert_eq!(
        report.total_latency, expect,
        "simulated latency must equal the analytic model"
    );
}
