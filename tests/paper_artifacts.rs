//! One assertion per paper artifact, cross-crate: the canonical facts the
//! reproduction must preserve, collected in one place (EXPERIMENTS.md
//! references these).

use fpga_memmap::prelude::*;
use fpga_memmap::workloads::{table3_board, table3_design, TABLE3};
use gmm_core::preprocess::{enumerate_port_allocations, preprocess_pair};

/// Table 1: families, block sizes, configuration ladders, bank ranges.
#[test]
fn table1_catalog() {
    use gmm_arch::{Family, APEX20K, FLEX10K, VIRTEX};
    let range = |devs: &[gmm_arch::Device]| {
        (
            devs.iter().map(|d| d.ram_blocks).min().unwrap(),
            devs.iter().map(|d| d.ram_blocks).max().unwrap(),
        )
    };
    assert_eq!(range(VIRTEX), (8, 208));
    assert_eq!(range(FLEX10K), (9, 20));
    assert_eq!(range(APEX20K), (12, 216));
    assert_eq!(Family::Virtex.block_bits(), 4096);
    assert_eq!(Family::Flex10K.block_bits(), 2048);
    assert_eq!(Family::Apex20K.block_bits(), 2048);
    for f in [Family::Virtex, Family::Flex10K, Family::Apex20K] {
        assert_eq!(f.configurations().len(), 5);
    }
}

/// Table 2: the 3-port 16-word enumeration, including the (8,8,0)
/// rejection the paper singles out.
#[test]
fn table2_allocation_options() {
    let opts = enumerate_port_allocations(3, 16);
    let verdict = |w: &[u32]| opts.iter().find(|o| o.words == w).map(|o| o.accepted);
    // Paper rows (Port1, Port2, Port3 options) — spot-checked:
    assert_eq!(verdict(&[16, 0, 0]), Some(true));
    assert_eq!(verdict(&[8, 8, 0]), Some(false), "explicitly rejected in §4.1.1");
    assert_eq!(verdict(&[8, 4, 0]), Some(true));
    assert_eq!(verdict(&[8, 0, 0]), Some(true));
    assert_eq!(verdict(&[4, 4, 4]), Some(true));
    assert_eq!(verdict(&[2, 2, 2]), Some(true));
    assert_eq!(verdict(&[1, 1, 1]), Some(true));
    assert_eq!(verdict(&[1, 1, 0]), Some(true));
    assert_eq!(verdict(&[0, 0, 0]), Some(true));
    // Geometric sanity: every option fits the instance.
    assert!(opts.iter().all(|o| o.words.iter().sum::<u32>() <= 16));
}

/// Figure 2: the 55x17 worked example, all seven derived quantities.
#[test]
fn figure2_worked_example() {
    let bank = BankType::new(
        "fig2",
        12,
        3,
        vec![
            RamConfig::new(128, 1),
            RamConfig::new(64, 2),
            RamConfig::new(32, 4),
            RamConfig::new(16, 8),
        ],
        1,
        1,
        Placement::OnChip,
    )
    .unwrap();
    let e = preprocess_pair(&bank, 55, 17);
    assert_eq!(e.split.alpha, RamConfig::new(16, 8));
    assert_eq!(e.split.beta, RamConfig::new(128, 1));
    assert_eq!(e.fp, 18);
    assert_eq!(e.wp, 3);
    assert_eq!(e.dp, 4);
    assert_eq!(e.wdp, 1);
    assert_eq!(e.cp(), 26);
    assert_eq!(e.cw, 17);
    assert_eq!(e.cd, 56);
}

/// Figure 3: the algorithm is optimal for 2-ported banks (no waste): the
/// port estimate matches the information-theoretic minimum
/// ceil(fraction * 2) for every power-of-two fragment.
#[test]
fn figure3_optimal_for_two_ports() {
    for log_frag in 0..12u32 {
        let frag = 1u32 << log_frag;
        for log_bank in log_frag..13u32 {
            let bank = 1u32 << log_bank;
            let ep = gmm_core::consumed_ports(frag, bank, 2);
            let exact = ((frag as u64 * 2).div_ceil(bank as u64)) as u32;
            assert_eq!(ep, exact.clamp(1, 2), "frag {frag} bank {bank}");
        }
    }
}

/// Table 3: the nine points' complexity parameters are reproduced
/// exactly, and the paper's own time series has the claimed shape.
#[test]
fn table3_points_and_paper_shape() {
    for p in &TABLE3 {
        let board = table3_board(p);
        assert_eq!(board.total_banks(), p.banks);
        assert_eq!(board.total_ports(), p.ports);
        assert_eq!(board.total_config_settings(), p.configs);
        assert_eq!(table3_design(p, 0xF00D).num_segments(), p.segments);
    }
    // Figure 4's visual: both series rise; the gap widens monotonically
    // in problem scale at the extremes.
    let speedups: Vec<f64> = TABLE3
        .iter()
        .map(|p| p.paper_complete_secs / p.paper_global_secs)
        .collect();
    assert!(speedups.first().unwrap() < &1.1);
    assert!(speedups.last().unwrap() > &6.0);
}

/// The global/detailed pipeline solves the two smallest Table 3 points
/// quickly and validates (the full nine-point timing comparison lives in
/// the bench suite).
#[test]
fn table3_small_points_map_end_to_end() {
    for idx in [1usize, 2] {
        let p = &TABLE3[idx - 1];
        let design = table3_design(p, 0xF00D);
        let board = table3_board(p);
        let t = std::time::Instant::now();
        let out = Mapper::new(MapperOptions::new()).map(&design, &board).unwrap();
        assert!(
            t.elapsed().as_secs_f64() < 10.0,
            "global/detailed must stay fast on point {idx}"
        );
        assert!(validate_detailed(&design, &board, &out.detailed).is_empty());
    }
}
