//! Retention soak: bounded memory under sustained, repetitive load.
//!
//! The batch service promises that a long-running daemon holds
//! *steady-state* memory: the solution cache never exceeds its capacity
//! (LRU eviction), terminal job records never exceed their per-shard
//! count cap (pruning), and neither bound is allowed to corrupt the
//! byte-identity contract — an evicted key that is re-submitted must
//! re-solve to the byte-identical payload of its original cold solve,
//! and a pruned job id must answer with the structured `expired` state
//! over TCP rather than a hang, a panic, or a misleading "unknown job".

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use gmm_service::{
    JobConfig, JobQueue, JobState, MapClient, MapServer, QueueOptions, RECORD_SHARDS,
};
use gmm_workloads::{cycling_instances, StreamSpec};

const WAIT: Duration = Duration::from_secs(300);

/// Distinct instance pool; must exceed CACHE_CAP so laps evict.
const DISTINCT: usize = 9;
/// Solution-cache capacity under test.
const CACHE_CAP: usize = 4;
/// Terminal records retained per record shard.
const RETAIN_JOBS: usize = 2;
/// Total submissions: > 10 × CACHE_CAP, several full laps of the pool.
const SUBMISSIONS: usize = 45;

#[test]
fn eviction_soak_over_tcp_stays_bounded_and_byte_identical() {
    let queue = Arc::new(JobQueue::new({
        let mut o = QueueOptions::default();
        o.workers = 4;
        o.cache_shards = 4;
        o.cache_cap = CACHE_CAP;
        o.retain_jobs = RETAIN_JOBS;
        o
    }));
    let server = MapServer::start("127.0.0.1:0", queue).expect("bind ephemeral port");
    let mut client = MapClient::connect(server.local_addr()).expect("connect");

    // Reference payload per instance name, captured at its first solve.
    let mut reference: HashMap<String, String> = HashMap::new();
    let mut job_ids = Vec::with_capacity(SUBMISSIONS);

    for inst in cycling_instances(StreamSpec::default(), DISTINCT).take(SUBMISSIONS) {
        let (job, _state, _cached) = client
            .submit(inst.design.clone(), inst.board.clone(), JobConfig::default())
            .expect("submit");
        job_ids.push(job);
        let out = client.wait(job, WAIT).expect("wait");
        assert_eq!(out.state, JobState::Done, "{}: {:?}", inst.name, out.error);
        let payload = serde_json::to_string(out.solution.as_ref().expect("solution"))
            .expect("canonical render");

        match reference.get(&inst.name) {
            None => {
                reference.insert(inst.name.clone(), payload);
            }
            Some(cold) => {
                // Whether this lap hit the cache or re-solved after an
                // eviction, the bytes must match the original cold solve —
                // and the payload must still replay as a valid mapping.
                assert_eq!(
                    &payload, cold,
                    "{}: resubmission (possibly post-eviction) not byte-identical",
                    inst.name
                );
                let detail = |json: &str| {
                    let v: serde::Value = serde_json::from_str(json).unwrap();
                    serde_json::to_string(v.get("detailed").expect("detailed field")).unwrap()
                };
                gmm_sim::validate_cache_hit(
                    &inst.design,
                    &inst.board,
                    &detail(cold),
                    &detail(&payload),
                )
                .unwrap_or_else(|e| panic!("{}: replay validation failed: {e}", inst.name));
            }
        }

        // The cache bound holds at every step, not just at the end.
        let stats = client.stats().expect("stats");
        assert!(
            stats.cache_entries <= CACHE_CAP as u64,
            "cache grew past its cap: {} > {CACHE_CAP}",
            stats.cache_entries
        );
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.jobs_submitted, SUBMISSIONS as u64);
    assert_eq!(stats.jobs_failed, 0);
    assert!(
        stats.cache_evictions > 0,
        "a {DISTINCT}-instance pool over a {CACHE_CAP}-entry cache must evict"
    );
    assert_eq!(stats.cache_cap, CACHE_CAP as u64);
    assert_eq!(stats.retain_jobs, RETAIN_JOBS as u64);
    assert!(
        stats.jobs_pruned > 0,
        "{SUBMISSIONS} terminal records over {RECORD_SHARDS}x{RETAIN_JOBS} slots must prune"
    );
    // Terminal-record bound: at most RETAIN_JOBS per shard remain known.
    let still_known = job_ids
        .iter()
        .filter(|&&id| matches!(client.poll(id), Ok(s) if s != JobState::Expired))
        .count();
    assert!(
        still_known <= RECORD_SHARDS * RETAIN_JOBS,
        "{still_known} live terminal records exceed the per-shard cap"
    );

    // A pruned job id answers with the structured expired state on both
    // verbs — never a hang, never ok:false "unknown job".
    let oldest = job_ids[0];
    assert_eq!(
        client.poll(oldest).expect("poll expired id"),
        JobState::Expired,
        "the oldest terminal record must have been pruned"
    );
    let expired = client.result(oldest).expect("result on expired id");
    assert_eq!(expired.state, JobState::Expired);
    assert!(expired.solution.is_none());
    assert!(
        expired.error.as_deref().unwrap_or("").contains("expired"),
        "expired result must explain itself: {:?}",
        expired.error
    );
    // ...while a genuinely unknown id is still an error, distinguishable
    // from expiry.
    match client.poll(999_999) {
        Err(gmm_service::ClientError::Remote(msg)) => assert!(msg.contains("unknown job")),
        other => panic!("unknown id must stay a remote error, got {other:?}"),
    }

    client.shutdown().expect("shutdown verb");
    server.join();
}

#[test]
fn concurrent_submitters_keep_stats_truthful_under_eviction() {
    let queue = Arc::new(JobQueue::new({
        let mut o = QueueOptions::default();
        o.workers = 4;
        o.cache_shards = 4;
        o.cache_cap = CACHE_CAP;
        o
    }));

    // Two submitters race the same cycling pool through the queue: every
    // key is inserted by whichever worker solves it first, duplicates are
    // first-writer-wins, and eviction churns continuously.
    let submitters: Vec<_> = (0..2)
        .map(|_| {
            let queue = queue.clone();
            std::thread::spawn(move || {
                let mut ids = Vec::new();
                for inst in cycling_instances(StreamSpec::default(), DISTINCT).take(DISTINCT * 2) {
                    ids.push((
                        inst.name.clone(),
                        queue.submit(inst.design, inst.board, JobConfig::default()).id,
                    ));
                }
                ids
            })
        })
        .collect();
    let submitted: Vec<(String, u64)> = submitters
        .into_iter()
        .flat_map(|t| t.join().expect("submitter thread"))
        .collect();

    assert!(queue.wait_idle(WAIT), "queue must drain");

    // Every outcome for the same instance name carries identical bytes,
    // no matter which submitter won which race or what was evicted when.
    let mut payload_of: HashMap<String, String> = HashMap::new();
    for (name, id) in &submitted {
        let out = queue.outcome(*id).expect("issued id is never unknown");
        assert_eq!(out.state, JobState::Done, "{name}: {:?}", out.error);
        let bytes = out.solution_json.expect("done job has payload").solution_json.clone();
        payload_of
            .entry(name.clone())
            .and_modify(|seen| assert_eq!(seen, &bytes, "{name}: divergent payloads"))
            .or_insert(bytes);
    }
    assert_eq!(payload_of.len(), DISTINCT);

    // Stats stay truthful: live entries within cap and equal to the
    // ground-truth map size, every lookup counted exactly once.
    let s = queue.stats();
    assert!(s.cache.entries <= CACHE_CAP as u64);
    assert_eq!(s.cache.entries, queue.cache().len() as u64);
    assert_eq!(
        s.cache.hits + s.cache.misses,
        s.submitted,
        "each submission performs exactly one counted lookup"
    );
    assert_eq!(s.submitted, (DISTINCT * 4) as u64);
    assert_eq!(s.completed, s.submitted);
    assert_eq!(s.failed, 0);
    queue.shutdown();
}
