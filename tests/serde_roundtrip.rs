//! Serialization round-trips for every on-disk artifact the CLI reads or
//! writes: boards, designs, detailed mappings, traces, and sim reports.

use fpga_memmap::prelude::*;
use fpga_memmap::workloads::{kernels, table3_board, table3_instance, TABLE3};
use gmm_sim::Trace;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn board_roundtrips() {
    for board in [
        Board::prototyping("XCV1000", 4).unwrap(),
        Board::hierarchical("EPF10K100").unwrap(),
        table3_board(&TABLE3[6]),
    ] {
        let back: Board = roundtrip(&board);
        assert_eq!(board, back);
        assert_eq!(board.total_ports(), back.total_ports());
    }
}

#[test]
fn design_roundtrips_with_lifetimes_and_profiles() {
    for design in [
        kernels::fft(512),
        kernels::histogram(64, 64, 128),
        kernels::matmul(32, 4),
    ] {
        let back: Design = roundtrip(&design);
        assert_eq!(design, back);
        // Conflict semantics survive.
        for i in 0..design.num_segments() {
            for j in 0..design.num_segments() {
                let (a, b) = (SegmentId(i), SegmentId(j));
                assert_eq!(
                    design.conflicts().conflicts(a, b),
                    back.conflicts().conflicts(a, b)
                );
            }
        }
    }
}

#[test]
fn mapping_roundtrips_and_revalidates() {
    let (design, board, _) = table3_instance(1);
    let out = Mapper::new(MapperOptions::new()).map(&design, &board).unwrap();
    let back: DetailedMapping = roundtrip(&out.detailed);
    assert_eq!(out.detailed, back);
    // A deserialized mapping still validates against the same world.
    assert!(validate_detailed(&design, &board, &back).is_empty());
}

#[test]
fn trace_and_report_roundtrip() {
    let design = kernels::fir(8, 64);
    let trace = Trace::from_profiles(&design);
    let back: Trace = roundtrip(&trace);
    assert_eq!(trace, back);

    let board = Board::prototyping("XCV300", 1).unwrap();
    let out = Mapper::new(MapperOptions::new()).map(&design, &board).unwrap();
    let report = simulate_mapping(&design, &board, &out.detailed, &trace).unwrap();
    let report_back: gmm_sim::SimReport = roundtrip(&report);
    assert_eq!(report, report_back);
}
