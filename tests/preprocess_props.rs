//! Property tests for the §4.1.1 pre-processing step: `consumed_ports`
//! (Figure 3) and the CP/CW/CD coefficients against the actual fragment
//! decomposition.

use gmm_arch::{geometric_ladder, BankType, Placement};
use gmm_core::detailed::fragment_segment;
use gmm_core::preprocess::{consumed_ports, preprocess_pair, round_pow2};
use gmm_design::SegmentId;
use proptest::prelude::*;

fn pow2_bank_strategy() -> impl Strategy<Value = BankType> {
    (1u32..3, 8u32..14, any::<bool>()).prop_map(|(ports, cap_log2, multi)| {
        let capacity = 1u64 << cap_log2;
        let configs = if multi {
            geometric_ladder(capacity, (capacity >> 4).max(1) as u32)
        } else {
            geometric_ladder(capacity, (capacity >> 1).max(1) as u32)
        };
        BankType::new("b", 16, ports, configs, 1, 1, Placement::OnChip).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Figure 3 invariants.
    #[test]
    fn consumed_ports_bounds(
        frag in 0u32..100_000,
        bank_log2 in 3u32..20,
        ports in 1u32..6,
    ) {
        let bank_depth = 1u32 << bank_log2;
        let ep = consumed_ports(frag, bank_depth, ports);
        // Never exceeds the port count; zero iff the fragment is empty.
        prop_assert!(ep <= ports);
        prop_assert_eq!(ep == 0, frag == 0);
        // A full (or over-full) fragment takes every port.
        if frag >= bank_depth {
            prop_assert_eq!(ep, ports);
        }
        // The port share always covers the space share:
        // ep/ports >= rounded_depth/bank_depth (the detailed-mapping
        // guarantee that port feasibility implies space feasibility).
        let rounded = round_pow2(frag).min(bank_depth) as u64;
        prop_assert!(
            ep as u64 * bank_depth as u64 >= rounded * ports as u64,
            "ep {} too small for fraction {}/{}",
            ep, rounded, bank_depth
        );
    }

    /// Monotonicity in the fragment depth.
    #[test]
    fn consumed_ports_monotone(
        a in 0u32..5000,
        b in 0u32..5000,
        bank_log2 in 3u32..16,
        ports in 1u32..5,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let depth = 1u32 << bank_log2;
        prop_assert!(consumed_ports(lo, depth, ports) <= consumed_ports(hi, depth, ports));
    }

    /// CP equals the sum of fragment port demands; CW*CD equals the sum of
    /// fragment reserved areas; the fragments exactly tile the segment.
    #[test]
    fn preprocessing_matches_fragments(
        bank in pow2_bank_strategy(),
        depth in 1u32..3000,
        width in 1u32..64,
    ) {
        let entry = preprocess_pair(&bank, depth, width);
        let frags = fragment_segment(&bank, SegmentId(0), depth, width);

        let ep_sum: u32 = frags.iter().map(|f| f.ep).sum();
        prop_assert_eq!(ep_sum, entry.cp(), "CP mismatch for {}x{}", depth, width);

        let reserved: u64 = frags.iter().map(|f| f.reserved_bits()).sum();
        prop_assert_eq!(
            reserved, entry.area_bits(),
            "CW*CD must equal total reserved bits for {}x{}", depth, width
        );

        // Exact tiling of the segment's used words/bits.
        let used_area: u64 = frags
            .iter()
            .map(|f| {
                let w = f.config.width.min(width.saturating_sub(f.bit_offset));
                f.used_depth as u64 * w as u64
            })
            .sum();
        prop_assert_eq!(used_area, depth as u64 * width as u64);

        // Reserved depths are powers of two (adder-free decode).
        for f in &frags {
            prop_assert!(f.reserved_depth.is_power_of_two());
            prop_assert!(f.used_depth <= f.reserved_depth);
        }

        // CW never smaller than the segment width; CD never smaller than
        // the depth (ceilings).
        prop_assert!(entry.cw >= width.min(entry.cw)); // cw covers width via configs
        prop_assert!(entry.cd >= depth as u64);
    }

    /// The width split honours the α rule: the α configuration is the
    /// narrowest one at least as wide as the segment, or the widest
    /// available.
    #[test]
    fn alpha_selection_rule(bank in pow2_bank_strategy(), width in 1u32..64) {
        let split = gmm_core::preprocess::width_split(&bank, width);
        let widths: Vec<u32> = bank.configs.iter().map(|c| c.width).collect();
        let max_w = *widths.iter().max().unwrap();
        if width <= max_w {
            prop_assert!(split.alpha.width >= width || split.full_cols > 0);
            // alpha is the *smallest* config width >= width.
            for &w in &widths {
                if w >= width {
                    prop_assert!(split.alpha.width <= w);
                }
            }
        } else {
            prop_assert_eq!(split.alpha.width, max_w);
        }
    }
}
