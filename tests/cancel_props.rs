//! Cancellation-safety soak for the batch queue.
//!
//! Cancels jobs at arbitrary points in their lifecycle — before a worker
//! claims them, mid-solve, after completion, concurrently from another
//! thread — while tight random deadlines fire, and asserts the queue's
//! invariants hold throughout:
//!
//! * live cache entries never exceed the configured cap;
//! * `CacheStats` stays truthful (exactly one hit-or-miss per submission);
//! * no waiter wedges: `wait_idle` drains and per-id `wait` returns;
//! * every issued id answers a *structured* state on poll/result —
//!   cancelled ids included — never a hang, panic, or "unknown job".

use std::sync::Arc;
use std::time::Duration;

use gmm_service::{JobConfig, JobQueue, JobState, QueueOptions};
use gmm_workloads::{cycling_instances, slow_table3_instance, StreamSpec};

const CACHE_CAP: usize = 6;
const DISTINCT: usize = 12;
const SUBMISSIONS: usize = 60;

/// Deterministic xorshift — the soak's schedule is seeded; the *timing*
/// randomness comes from real thread interleaving.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn cancelling_at_arbitrary_points_never_violates_queue_invariants() {
    let queue = Arc::new(JobQueue::new({
        let mut o = QueueOptions::default();
        o.workers = 4;
        o.cache_shards = 4;
        o.cache_cap = CACHE_CAP;
        o.retain_jobs = 0; // keep every record so every id stays pollable
        o
    }));
    let mut rng = Rng(0xDECAF_C0FFEE);
    let mut ids: Vec<u64> = Vec::new();

    // A concurrent canceller racing the submission loop: fires at ids it
    // reads from a shared log, at whatever point their jobs happen to be.
    let (tx, rx) = std::sync::mpsc::channel::<u64>();
    let canceller = {
        let queue = queue.clone();
        std::thread::spawn(move || {
            let mut structured = 0u32;
            while let Ok(id) = rx.recv() {
                // Cancel must always answer a structured state for
                // issued ids, whatever phase the job is in.
                let state = queue.cancel(id).expect("issued id answers cancel");
                assert!(
                    matches!(
                        state,
                        JobState::Queued
                            | JobState::Running
                            | JobState::Done
                            | JobState::Failed
                            | JobState::Cancelled
                            | JobState::Deadline
                    ),
                    "unstructured cancel answer {state:?}"
                );
                structured += 1;
            }
            structured
        })
    };

    // Mix fast cycling instances (cache churn) with a few slow ones
    // (mid-solve cancels), random tight deadlines, and random cancels.
    let mut submitted = 0u64;
    for (i, inst) in cycling_instances(StreamSpec::default(), DISTINCT)
        .take(SUBMISSIONS)
        .enumerate()
    {
        let deadline = match rng.next() % 4 {
            0 => Some(Duration::from_millis(rng.next() % 20)),
            _ => None,
        };
        let t = queue.submit_with_deadline(inst.design, inst.board, JobConfig::default(), deadline);
        ids.push(t.id);
        submitted += 1;

        if i % 6 == 0 {
            // Second-scale instance so some cancels land mid-solve.
            let (design, board) = slow_table3_instance();
            let t = queue.submit_with_deadline(
                design,
                board,
                JobConfig::default(),
                // Half the slow jobs also get a deadline they will hit.
                rng.next().is_multiple_of(2).then(|| Duration::from_millis(50)),
            );
            ids.push(t.id);
            submitted += 1;
        }
        // Cancel an arbitrary earlier job (often already terminal, often
        // queued, sometimes running) from the racing thread.
        if rng.next().is_multiple_of(3) {
            let victim = ids[(rng.next() as usize) % ids.len()];
            tx.send(victim).expect("canceller alive");
        }
        if rng.next().is_multiple_of(8) {
            std::thread::sleep(Duration::from_millis(rng.next() % 4));
        }

        // Mid-run invariants.
        let s = queue.stats();
        assert!(
            s.cache.entries <= CACHE_CAP as u64,
            "cache overflow mid-run: {} > {CACHE_CAP}",
            s.cache.entries
        );
    }
    drop(tx);
    let cancels_issued = canceller.join().expect("canceller thread");
    assert!(cancels_issued > 0, "the soak must actually cancel things");

    // No wedged condvar waiters: the queue drains.
    assert!(
        queue.wait_idle(Duration::from_secs(300)),
        "queue failed to drain after cancellations"
    );

    // Counters are conserved and the cache stayed truthful.
    let s = queue.stats();
    assert_eq!(s.submitted, submitted);
    assert_eq!(
        s.completed + s.failed + s.cancelled + s.deadline,
        submitted,
        "every job must land in exactly one terminal counter: {s:?}"
    );
    assert_eq!(
        s.cache.hits + s.cache.misses,
        submitted,
        "exactly one cache hit-or-miss per submission: {s:?}"
    );
    assert!(s.cache.entries <= CACHE_CAP as u64);

    // Every issued id answers a structured terminal state on poll, result
    // *and* wait (which must return instantly on a terminal job).
    for &id in &ids {
        let state = queue.poll(id).expect("issued ids never read as unknown");
        assert!(state.is_terminal(), "job {id} stuck in {state:?}");
        let out = queue
            .wait(id, Duration::from_millis(250))
            .expect("wait answers terminal ids");
        assert!(out.state.is_terminal());
        match out.state {
            JobState::Cancelled => {
                assert!(out.solution_json.is_none(), "cancelled jobs ship no payload");
                assert!(out.error.is_some(), "cancelled jobs explain themselves");
            }
            JobState::Done => assert!(out.solution_json.is_some()),
            JobState::Failed | JobState::Deadline => assert!(out.error.is_some()),
            other => panic!("job {id}: unexpected terminal state {other:?}"),
        }
    }
}
