//! Warm-start hint equivalence: seeding branch-and-bound with a
//! persisted family hint must change *how fast* a solve converges, never
//! *what* it returns.
//!
//! Two layers are pinned down:
//!
//! * the `gmm_api` facade: a solve seeded with an optimal assignment
//!   reports `incumbent_seeded`, reaches the same optimal objective, and
//!   produces a byte-identical payload (only strictly better incumbents
//!   may replace the seed, and the detailed phase is deterministic in
//!   the global assignment);
//! * the service queue: with a `persist_dir`, solving one member of an
//!   instance family (same design/config, different board constants)
//!   leaves a hint that a later family member's cold solve picks up —
//!   observable end-to-end in `QueueStats` as hint hits and accepted
//!   incumbent seeds.

use std::time::Duration;

use gmm_arch::Board;
use gmm_api::{MapRequest, Termination};
use gmm_service::{
    canonical_json, family_key, instance_key, JobConfig, JobQueue, JobSolution, JobState,
    QueueOptions,
};
use gmm_workloads::{random_design, RandomDesignSpec};

fn instance(seed: u64, segments: usize) -> (gmm_design::Design, Board) {
    let design = random_design(&RandomDesignSpec {
        segments,
        depth: (16, 512),
        width: (1, 8),
        seed,
        ..RandomDesignSpec::default()
    });
    (design, Board::prototyping("XCV300", 2).unwrap())
}

fn payload(report: &gmm_api::MapReport) -> String {
    let outcome = report.outcome.as_ref().expect("optimal report has an outcome");
    canonical_json(&JobSolution {
        global: outcome.global.clone(),
        detailed: outcome.detailed.clone(),
    })
}

#[test]
fn hinted_solve_is_byte_identical_to_cold_and_counts_the_seed() {
    for seed in [3u64, 17, 55] {
        let (design, board) = instance(seed, 8);

        let cold = MapRequest::new(design.clone(), board.clone())
            .execute()
            .expect("cold solve");
        assert_eq!(cold.termination, Termination::Optimal, "seed {seed}");
        assert_eq!(cold.incumbent_seeded, 0, "no hint was offered");
        let cold_json = payload(&cold);
        let hint: Vec<u32> = cold
            .outcome
            .as_ref()
            .unwrap()
            .global
            .type_of
            .iter()
            .map(|t| t.0 as u32)
            .collect();

        let hinted = MapRequest::new(design, board)
            .warm_hint(hint)
            .execute()
            .expect("hinted solve");
        assert_eq!(hinted.termination, Termination::Optimal, "seed {seed}");
        assert!(
            hinted.incumbent_seeded >= 1,
            "seed {seed}: a feasible optimal hint must be accepted as the incumbent"
        );
        assert_eq!(
            hinted.objective, cold.objective,
            "seed {seed}: hint changed the optimal objective"
        );
        assert_eq!(
            payload(&hinted),
            cold_json,
            "seed {seed}: hint changed the solution bytes — only strictly \
             better incumbents may replace the seed"
        );
        // A seeded incumbent can only shrink the tree, never grow it.
        assert!(
            hinted.nodes_explored <= cold.nodes_explored,
            "seed {seed}: hinted tree ({}) larger than cold tree ({})",
            hinted.nodes_explored,
            cold.nodes_explored
        );
        if hinted.nodes_explored > 1 {
            assert!(
                hinted.warm_started_nodes > 0,
                "seed {seed}: a multi-node hinted solve must warm-start children"
            );
        }
    }
}

#[test]
fn misfit_hints_are_silently_dropped_not_fatal() {
    let (design, board) = instance(91, 6);
    let cold = MapRequest::new(design.clone(), board.clone())
        .execute()
        .expect("cold solve");
    assert_eq!(cold.termination, Termination::Optimal);

    // Wrong segment count: structurally impossible, must be discarded.
    let short = MapRequest::new(design.clone(), board.clone())
        .warm_hint(vec![0])
        .execute()
        .expect("short-hint solve");
    assert_eq!(short.incumbent_seeded, 0, "misfit hint must not seed");
    assert_eq!(short.objective, cold.objective);
    assert_eq!(payload(&short), payload(&cold));

    // Out-of-range bank type index: no matching variable, discarded too.
    let bogus = MapRequest::new(design.clone(), board)
        .warm_hint(vec![99; design.num_segments()])
        .execute()
        .expect("bogus-hint solve");
    assert_eq!(bogus.incumbent_seeded, 0);
    assert_eq!(bogus.objective, cold.objective);
}

#[test]
fn family_hint_seeds_a_sibling_solve_through_the_queue() {
    // Two boards differing only in a numeric constant (SRAM bank count)
    // are distinct *instances* but the same *family*: board numbers are
    // masked out of the family hash.
    let (design, board_a) = instance(7, 7);
    let board_b = Board::prototyping("XCV300", 3).unwrap();
    let cfg = JobConfig::default();
    assert_ne!(
        instance_key(&design, &board_a, &cfg),
        instance_key(&design, &board_b, &cfg),
        "different boards must be different cache keys"
    );
    assert_eq!(
        family_key(&design, &board_a, &cfg),
        family_key(&design, &board_b, &cfg),
        "boards differing only in constants must share a family"
    );

    let dir = std::env::temp_dir().join(format!(
        "gmm-warmstart-equiv-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let queue = JobQueue::new({
        let mut o = QueueOptions::default();
        o.workers = 1;
        o.persist_dir = Some(dir.clone());
        o
    });
    let a = queue.submit(design.clone(), board_a, cfg.clone());
    assert_eq!(
        queue.wait(a.id, Duration::from_secs(120)).unwrap().state,
        JobState::Done
    );
    let after_a = queue.stats();
    assert_eq!(after_a.persist.hint_entries, 1, "optimal solve must leave a hint");
    assert_eq!(after_a.persist.hint_hits, 0, "first family member had nothing to read");

    // The sibling is a cold solve (different instance key), but its
    // family hint is on disk: offered, and — being feasible on the
    // larger board — accepted as the starting incumbent.
    let b = queue.submit(design.clone(), board_b, cfg);
    assert!(!b.cached, "a family sibling is not a cache hit");
    let out = queue.wait(b.id, Duration::from_secs(120)).unwrap();
    assert_eq!(out.state, JobState::Done);

    // Reference: the same sibling solved with no service layer at all.
    let reference = MapRequest::new(design, Board::prototyping("XCV300", 3).unwrap())
        .execute()
        .expect("reference solve");
    assert_eq!(reference.termination, Termination::Optimal);
    let got = out.objective.expect("done job has an objective");
    let want = reference.objective.expect("optimal report has an objective");
    assert!(
        (got - want).abs() <= 1e-6 * want.abs().max(1.0),
        "hinted queue solve objective {got} != cold reference {want}"
    );

    let s = queue.stats();
    assert!(s.persist.hint_hits >= 1, "sibling solve must read the family hint");
    assert!(
        s.incumbent_seeded >= 1,
        "a feasible family hint must be accepted as the incumbent: {s:?}"
    );
    drop(queue);
    let _ = std::fs::remove_dir_all(&dir);
}
