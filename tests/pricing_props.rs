//! Property tests: the simplex pricing rules are interchangeable.
//!
//! Dantzig, partial, and devex pricing pick different entering columns
//! and therefore walk different pivot paths — but over the same LP they
//! must land on the same optimal objective. That invariant is what makes
//! `--lp-pricing` a pure performance knob: these tests drive it on
//! randomized LPs (cold and warm-started dual-simplex re-solves) and on
//! randomized feasible stream instances through the full MIP pipeline
//! (where every warm-started branch-and-bound child re-solves through
//! the dual simplex).

use gmm_api::MapRequest;
use gmm_ilp::model::{lin, Model, Sense};
use gmm_ilp::simplex::{solve_lp, solve_lp_warm, SimplexOptions, WarmStart};
use gmm_ilp::standard::LpCore;
use gmm_ilp::{LpStatus, PricingRule};
use gmm_workloads::{stream_instances, StreamSpec};
use proptest::prelude::*;

fn opts_with(rule: PricingRule) -> SimplexOptions {
    SimplexOptions {
        pricing: rule,
        ..SimplexOptions::default()
    }
}

/// splitmix64 — the same tiny generator the workloads crate uses; local
/// because the point is deriving *all* LP data from one proptest seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }
}

/// A random box-bounded LP that is feasible (x = 0 satisfies every
/// constraint) and bounded (every variable is boxed), so all three
/// pricing rules must report `Optimal` with one objective value.
fn random_lp(seed: u64) -> LpCore {
    let mut rng = Mix(seed);
    let n = 2 + (rng.next() % 5) as usize; // 2..=6 variables
    let m = 1 + (rng.next() % 4) as usize; // 1..=4 constraints
    let mut model = Model::new();
    let vars: Vec<_> = (0..n)
        .map(|_| {
            let ub = rng.f64_in(1.0, 10.0);
            let cost = rng.f64_in(-5.0, 5.0);
            model.add_continuous(0.0, ub, cost).expect("valid bounds")
        })
        .collect();
    for _ in 0..m {
        let terms: Vec<_> = vars.iter().map(|&v| (v, rng.f64_in(0.0, 3.0))).collect();
        let rhs = rng.f64_in(1.0, 15.0);
        model
            .add_constraint(lin(&terms), Sense::Le, rhs)
            .expect("valid constraint");
    }
    LpCore::from_model(&model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cold solves and warm-started re-solves under tightened bounds
    /// agree across all three pricing rules.
    #[test]
    fn lp_rules_agree_cold_and_warm(seed in 0u64..1_000_000) {
        let core = random_lp(seed);

        // Cold: every rule optimal, one objective.
        let mut warm: Option<WarmStart> = None;
        let mut base = f64::NAN;
        for rule in PricingRule::ALL {
            let sol = solve_lp(&core, &core.lb, &core.ub, &opts_with(rule))
                .expect("bounded feasible LP");
            prop_assert_eq!(sol.status, LpStatus::Optimal, "{} cold not optimal", rule);
            if base.is_nan() {
                base = sol.objective;
                warm = sol.snapshot.as_ref().and_then(|s| s.warm_start());
            } else {
                prop_assert!(
                    (sol.objective - base).abs() < 1e-6,
                    "{} cold objective {} != dantzig {}", rule, sol.objective, base
                );
            }
        }

        // Tighten every upper bound; the old optimum's basis seeds a
        // warm re-solve whose bound violations the dual simplex repairs.
        let tight_ub: Vec<f64> = core.ub.iter().map(|&u| u * 0.5).collect();
        let mut tight_base = f64::NAN;
        for rule in PricingRule::ALL {
            let sol = solve_lp_warm(&core, &core.lb, &tight_ub, &opts_with(rule), warm.as_ref())
                .expect("tightened LP still feasible at x = 0");
            prop_assert_eq!(sol.status, LpStatus::Optimal, "{} warm not optimal", rule);
            if tight_base.is_nan() {
                tight_base = sol.objective;
            } else {
                prop_assert!(
                    (sol.objective - tight_base).abs() < 1e-6,
                    "{} warm objective {} != dantzig {}", rule, sol.objective, tight_base
                );
            }
        }
        // Tightening box bounds can only worsen (raise) a minimum.
        prop_assert!(tight_base >= base - 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Full-pipeline agreement: a feasible stream instance mapped under
    /// each pricing rule reaches the same optimal objective (the MIP
    /// solve inside exercises warm-started dual-simplex child re-solves
    /// on every branch).
    #[test]
    fn mip_rules_agree_on_stream_instances(seed in 0u64..10_000) {
        let spec = StreamSpec { seed, ..StreamSpec::default() };
        let inst = stream_instances(spec).next().expect("stream is endless");
        let mut base: Option<f64> = None;
        for rule in PricingRule::ALL {
            let report = MapRequest::new(inst.design.clone(), inst.board.clone())
                .lp_pricing(rule)
                .execute()
                .expect("stream instances are mappable");
            let obj = report.objective.expect("optimal solve has an objective");
            match base {
                None => base = Some(obj),
                Some(b) => prop_assert!(
                    (obj - b).abs() < 1e-6,
                    "{}: {} objective {} != dantzig {}", inst.name, rule, obj, b
                ),
            }
        }
    }
}
