//! The paper's central claim, as a property: **detailed mapping cannot
//! change the cost**, so the two-phase global/detailed optimum equals the
//! one-step complete optimum. Verified on small random instances where
//! the complete formulation still solves quickly.

use fpga_memmap::prelude::*;
use fpga_memmap::workloads::{board_from_specs, random_design, RandomDesignSpec, TypeSpec};
use gmm_core::solve_complete;
use gmm_core::{CostMatrix, PreTable};
use proptest::prelude::*;

fn small_board_strategy() -> impl Strategy<Value = Board> {
    (2u32..5, 1u32..4).prop_map(|(onchip, sram)| {
        board_from_specs(
            "small",
            &[
                TypeSpec {
                    name: "OnChip".into(),
                    instances: onchip,
                    ports: 2,
                    capacity_bits: 4096,
                    multi_config: true,
                    read_latency: 1,
                    write_latency: 1,
                    placement: Placement::OnChip,
                },
                TypeSpec {
                    name: "SRAM".into(),
                    instances: sram,
                    ports: 1,
                    capacity_bits: 262_144,
                    multi_config: false,
                    read_latency: 2,
                    write_latency: 2,
                    placement: Placement::DirectOffChip,
                },
            ],
        )
    })
}

proptest! {
    // The complete formulation is the expensive one; keep the case count
    // and sizes small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn two_phase_optimum_equals_complete_optimum(
        board in small_board_strategy(),
        seed in any::<u64>(),
        segments in 1usize..6,
    ) {
        let design = random_design(&RandomDesignSpec {
            segments,
            depth: (4, 600),
            width: (1, 24),
            seed,
            ..RandomDesignSpec::default()
        });
        let pre = PreTable::build(&design, &board);
        let matrix = CostMatrix::build(&design, &board, &pre);
        let w = CostWeights::default();
        let backend = SolverBackend::default();

        let two_phase = gmm_core::solve_global(
            &design, &board, &pre, &matrix, &w, &backend, false, &[],
        );
        let complete = solve_complete(&design, &board, &pre, &matrix, &w, &backend, false);

        match (two_phase, complete) {
            (Ok(g), Ok((c, stats))) => {
                let cg = g.cost.weighted(&w);
                let cc = c.cost.weighted(&w);
                prop_assert!(
                    (cg - cc).abs() < 1e-6,
                    "two-phase {cg} vs complete {cc} (model {stats:?})"
                );
                // And detailed mapping realizes the global assignment.
                let detailed = gmm_core::map_detailed(&design, &board, &pre, &g)
                    .expect("<=2-port board");
                prop_assert!(validate_detailed(&design, &board, &detailed).is_empty());
            }
            // Both must agree on infeasibility too.
            (Err(MapError::Infeasible), Err(MapError::Infeasible))
            | (Err(MapError::Unmappable(_)), Err(MapError::Unmappable(_))) => {}
            (g, c) => {
                return Err(TestCaseError::fail(format!(
                    "feasibility disagreement: two-phase {:?} vs complete {:?}",
                    g.map(|x| x.cost), c.map(|(x, _)| x.cost)
                )));
            }
        }
    }
}

/// The Figure 2 example end-to-end: the 55x17 structure's detailed
/// placement consumes exactly CP = 26 ports.
#[test]
fn figure2_ports_conserved_through_detailed_mapping() {
    let bank = BankType::new(
        "fig2",
        12,
        3,
        vec![
            RamConfig::new(128, 1),
            RamConfig::new(64, 2),
            RamConfig::new(32, 4),
            RamConfig::new(16, 8),
        ],
        1,
        1,
        Placement::OnChip,
    )
    .unwrap();
    let board = Board::new("fig2", vec![bank]).unwrap();
    let mut b = DesignBuilder::new("d");
    b.segment("ds", 55, 17).unwrap();
    let design = b.build().unwrap();
    let out = Mapper::new(MapperOptions::new()).map(&design, &board).unwrap();
    let ports_used: usize = out.detailed.fragments.iter().map(|f| f.ports.len()).sum();
    assert_eq!(ports_used, 26, "CP_dt must be conserved");
}
