//! Property tests for the persistent cache tier's segment log.
//!
//! The log must be a durable, self-validating store under the failure
//! modes a daemon actually meets: clean restarts (spill → drop → reload
//! round-trips every payload byte-identically), crash truncation (a torn
//! final record is discarded silently and every intact record survives),
//! and bit rot (any flipped byte is caught by the checksum, the damaged
//! record is skipped and counted `disk_corrupt`, and nothing wrong is
//! ever served). None of these may ever panic the scanner.
//!
//! The offline proptest stand-in only generates integers, so each case
//! draws a `u64` seed and synthesizes its record pool, payload bytes,
//! and damage site from a local splitmix64 stream.

use std::path::PathBuf;

use gmm_service::{InstanceKey, PersistStore, WarmHint};
use proptest::prelude::*;

fn temp_dir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gmm-persist-props-{tag}-{case}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Local splitmix64 stream: the shim's strategies only cover integers,
/// so wide values (u128 keys, f64 objectives, payload strings) are
/// derived in-body from one drawn seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn key(&mut self) -> u128 {
        (u128::from(self.next()) << 64) | u128::from(self.next())
    }

    /// Finite objective in roughly ±4.4e9, with a fractional part so the
    /// bit-identity assertions exercise real mantissas.
    fn objective(&mut self) -> f64 {
        (self.next() as i64 as f64) / 2.0e9
    }

    /// A JSON-ish payload: the log stores raw bytes, so content is free.
    fn payload(&mut self) -> String {
        const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789:{},\"[]";
        let len = 1 + (self.next() as usize) % 60;
        (0..len)
            .map(|_| CHARS[(self.next() as usize) % CHARS.len()] as char)
            .collect()
    }
}

/// A pool of `n` solution records with distinct keys.
fn record_pool(mix: &mut Mix, n: usize) -> Vec<(u128, f64, String)> {
    let mut v: Vec<(u128, f64, String)> = (0..n)
        .map(|_| (mix.key(), mix.objective(), mix.payload()))
        .collect();
    v.sort_by_key(|(k, _, _)| *k);
    v.dedup_by_key(|(k, _, _)| *k);
    v
}

/// A pool of `n` warm-start hints with distinct family keys.
fn hint_pool(mix: &mut Mix, n: usize) -> Vec<(u128, WarmHint)> {
    let mut v: Vec<(u128, WarmHint)> = (0..n)
        .map(|_| {
            let family = mix.key();
            let objective = mix.objective();
            let len = 1 + (mix.next() as usize) % 9;
            let type_of = (0..len).map(|_| (mix.next() % 16) as u32).collect();
            (family, WarmHint { objective, type_of })
        })
        .collect();
    v.sort_by_key(|(k, _)| *k);
    v.dedup_by_key(|(k, _)| *k);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Spill → drop → reload: every payload comes back byte-identical
    /// (and bit-identical for the objective), for both record kinds.
    #[test]
    fn reload_round_trips_every_payload_byte_identically(
        seed in any::<u64>(),
        n_records in 1usize..12,
        n_hints in 0usize..6,
    ) {
        let mut mix = Mix(seed);
        let records = record_pool(&mut mix, n_records);
        let hints = hint_pool(&mut mix, n_hints);
        let dir = temp_dir("reload", seed);
        {
            let store = PersistStore::open(&dir).unwrap();
            for (key, objective, json) in &records {
                store.put(InstanceKey(*key), *objective, json);
            }
            for (family, hint) in &hints {
                store.put_hint(InstanceKey(*family), hint);
            }
        }
        let store = PersistStore::open(&dir).unwrap();
        prop_assert_eq!(store.len(), records.len());
        for (key, objective, json) in &records {
            let (obj, payload) = store.get(InstanceKey(*key)).expect("record survives reload");
            prop_assert_eq!(obj.to_bits(), objective.to_bits());
            prop_assert_eq!(&payload, json, "payload must be byte-identical");
        }
        for (family, hint) in &hints {
            let got = store.hint(InstanceKey(*family));
            prop_assert_eq!(got.as_ref(), Some(hint));
        }
        prop_assert_eq!(store.stats().disk_corrupt, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncating the log anywhere — mid-payload, mid-header, mid-checksum
    /// — never panics, recovers every record whose frame fits the prefix,
    /// and counts nothing corrupt: a cut tail is a crash artifact.
    #[test]
    fn arbitrary_truncation_recovers_every_intact_record(
        seed in any::<u64>(),
        n_records in 1usize..12,
        cut_per_mille in 0u32..1000,
    ) {
        let mut mix = Mix(seed);
        let records = record_pool(&mut mix, n_records);
        let dir = temp_dir("trunc", seed);
        // Frame geometry of record i: header 8 + body (17 + 8 + json) + sum 8.
        let mut frame_ends = Vec::with_capacity(records.len());
        {
            let store = PersistStore::open(&dir).unwrap();
            let mut at = 0u64;
            for (key, objective, json) in &records {
                store.put(InstanceKey(*key), *objective, json);
                at += 8 + 17 + 8 + json.len() as u64 + 8;
                frame_ends.push(at);
            }
        }
        let path = dir.join("cache.log");
        let bytes = std::fs::read(&path).unwrap();
        prop_assert_eq!(bytes.len() as u64, *frame_ends.last().unwrap());
        let cut = bytes.len() * cut_per_mille as usize / 1000;
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let store = PersistStore::open(&dir).unwrap();
        for (i, (key, objective, json)) in records.iter().enumerate() {
            if frame_ends[i] <= cut as u64 {
                let (obj, payload) =
                    store.get(InstanceKey(*key)).expect("intact record must survive");
                prop_assert_eq!(obj.to_bits(), objective.to_bits());
                prop_assert_eq!(&payload, json);
            } else {
                prop_assert!(
                    store.get(InstanceKey(*key)).is_none(),
                    "record {} was cut at byte {} and must not be served", i, cut
                );
            }
        }
        prop_assert_eq!(
            store.stats().disk_corrupt, 0,
            "crash truncation is torn, never corrupt"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping any single byte anywhere in the log is detected: the
    /// damaged record is dropped and counted `disk_corrupt`, and every
    /// record that *is* served carries its original bytes.
    #[test]
    fn flipped_byte_anywhere_is_detected_and_skipped(
        seed in any::<u64>(),
        n_records in 1usize..12,
        pos_per_mille in 0u32..1000,
        flip in 1u8..=255,
    ) {
        let mut mix = Mix(seed);
        let records = record_pool(&mut mix, n_records);
        let dir = temp_dir("flip", seed);
        {
            let store = PersistStore::open(&dir).unwrap();
            for (key, objective, json) in &records {
                store.put(InstanceKey(*key), *objective, json);
            }
        }
        let path = dir.join("cache.log");
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = bytes.len() * pos_per_mille as usize / 1000;
        bytes[pos] ^= flip; // flip != 0, so the byte really changes
        std::fs::write(&path, &bytes).unwrap();

        let store = PersistStore::open(&dir).unwrap();
        prop_assert!(
            store.stats().disk_corrupt >= 1,
            "a flipped byte must be counted corrupt"
        );
        prop_assert!(store.len() < records.len(), "the damaged record is dropped");
        let mut served = 0usize;
        for (key, objective, json) in &records {
            if let Some((obj, payload)) = store.get(InstanceKey(*key)) {
                prop_assert_eq!(obj.to_bits(), objective.to_bits());
                prop_assert_eq!(&payload, json, "served records must be undamaged");
                served += 1;
            }
        }
        // A body flip loses one record; a header flip stops the scan and
        // loses the tail as well. Either way nothing wrong was served.
        prop_assert!(served < records.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The scanner accepts arbitrary byte soup as a log without panicking,
    /// and a store opened on it still works.
    #[test]
    fn arbitrary_garbage_opens_without_panicking(
        seed in any::<u64>(),
        len in 0usize..256,
    ) {
        let mut mix = Mix(seed);
        let garbage: Vec<u8> = (0..len).map(|_| mix.next() as u8).collect();
        let dir = temp_dir("soup", seed);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("cache.log"), &garbage).unwrap();
        let store = PersistStore::open(&dir).unwrap();
        store.put(InstanceKey(7), 1.5, "{\"still\":\"works\"}");
        let got = store.get(InstanceKey(7));
        prop_assert_eq!(got, Some((1.5, "{\"still\":\"works\"}".to_string())));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
