//! End-to-end tests of the protocol-v2 mapsrv surface: the `hello`
//! handshake, watched `submit_batch`, server-push `watch` streams, the
//! v1 compatibility contract, and the bounded-delivery guarantee that a
//! stalled watcher can never block solver workers.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use gmm_api::Termination;
use gmm_service::{
    JobConfig, JobEvent, JobQueue, JobState, MapServer, ProgressFrame, Proto, QueueOptions,
    Request, Response, Session, SubmitSpec,
};
use gmm_workloads::{stream_instances, StreamSpec};

const WAIT: Duration = Duration::from_secs(300);

fn start_server(workers: usize) -> MapServer {
    let queue = Arc::new(JobQueue::new({
        let mut o = QueueOptions::default();
        o.workers = workers;
        o
    }));
    MapServer::start("127.0.0.1:0", queue).expect("bind ephemeral port")
}

/// Rank of a state in the one-way delivery order.
fn rank(state: JobState) -> u8 {
    match state {
        JobState::Queued => 0,
        JobState::Running => 1,
        _ => 2,
    }
}

#[test]
fn watch_stream_emits_ordered_states_and_bridged_progress() {
    const BATCH: usize = 8;
    let server = start_server(2);
    let mut session = Session::connect(server.local_addr()).expect("connect");
    assert_eq!(session.proto(), Proto::V2, "hello must negotiate v2");

    let instances: Vec<_> = stream_instances(StreamSpec::default()).take(BATCH).collect();
    let receipts = session
        .submit_batch(
            instances
                .iter()
                .map(|i| SubmitSpec::new(i.design.clone(), i.board.clone(), JobConfig::default()))
                .collect(),
        )
        .expect("submit_batch");
    assert_eq!(receipts.len(), BATCH);
    assert!(
        receipts.iter().all(|r| !r.cached),
        "distinct instances must all solve cold"
    );

    // Consume the stream until every job is terminal. No poll verb is
    // ever sent on this path — the events *are* the waiting.
    let mut events: Vec<JobEvent> = Vec::new();
    session
        .for_each_event(WAIT, |ev| events.push(ev.clone()))
        .expect("event stream");

    for r in &receipts {
        let job = r.job;
        let states: Vec<(JobState, Option<Termination>)> = events
            .iter()
            .filter_map(|ev| match ev {
                JobEvent::State {
                    job: j,
                    state,
                    termination,
                } if *j == job => Some((*state, *termination)),
                _ => None,
            })
            .collect();
        // Watched-at-submit: the full lifecycle, strictly ordered.
        assert_eq!(
            states.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![JobState::Queued, JobState::Running, JobState::Done],
            "job {job}: unexpected state sequence"
        );
        assert!(
            states.windows(2).all(|w| rank(w[0].0) < rank(w[1].0)),
            "job {job}: states must be strictly rank-increasing"
        );
        let (_, terminal) = states.last().unwrap();
        assert_eq!(
            *terminal,
            Some(Termination::Optimal),
            "job {job}: terminal frame must carry the full termination"
        );

        // ≥1 bridged progress frame per solved job, and node counts
        // monotone within the job's stream.
        let progress: Vec<&ProgressFrame> = events
            .iter()
            .filter_map(|ev| match ev {
                JobEvent::Progress { job: j, frame } if *j == job => Some(frame),
                _ => None,
            })
            .collect();
        assert!(
            !progress.is_empty(),
            "job {job}: no progress frames bridged from the solver"
        );
        assert!(
            progress
                .iter()
                .any(|f| matches!(f, ProgressFrame::Phase { .. })),
            "job {job}: expected at least one phase frame"
        );
        let nodes: Vec<u64> = progress
            .iter()
            .filter_map(|f| match f {
                ProgressFrame::Incumbent { nodes, .. } | ProgressFrame::Nodes { nodes } => {
                    Some(*nodes)
                }
                ProgressFrame::Phase { .. } => None,
            })
            .collect();
        assert!(
            nodes.windows(2).all(|w| w[0] <= w[1]),
            "job {job}: node heartbeats must be monotonic, got {nodes:?}"
        );

        // Ordering across kinds: progress happens strictly between the
        // running transition and the terminal frame.
        let idx_running = events
            .iter()
            .position(|ev| {
                matches!(ev, JobEvent::State { job: j, state, .. }
                         if *j == job && *state == JobState::Running)
            })
            .unwrap();
        let idx_done = events
            .iter()
            .position(|ev| {
                matches!(ev, JobEvent::State { job: j, state, .. }
                         if *j == job && state.is_terminal())
            })
            .unwrap();
        for (i, ev) in events.iter().enumerate() {
            if matches!(ev, JobEvent::Progress { job: j, .. } if *j == job) {
                assert!(
                    idx_running < i && i < idx_done,
                    "job {job}: progress frame outside its running window"
                );
            }
        }
    }

    // wait_all drains the in-flight set with terminations attached.
    let outcomes = session.wait_all(WAIT).expect("wait_all");
    assert_eq!(outcomes.len(), BATCH);
    for out in &outcomes {
        assert_eq!(out.state, JobState::Done);
        assert_eq!(out.termination, Some(Termination::Optimal));
        assert!(out.objective.is_some());
        assert!(out.solution.is_some());
    }
    assert!(session.inflight().is_empty(), "wait_all drains in-flight");

    let stats = session.stats().expect("stats");
    assert!(stats.proto_versions.v2 >= 1, "{stats:?}");

    session.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn watch_stream_carries_deadline_terminations() {
    let server = start_server(1);
    let mut session = Session::connect(server.local_addr()).expect("connect");

    // A second-scale instance bounded to 300ms must stream
    // queued→running→deadline with the full termination token.
    let (design, board) = gmm_workloads::slow_table3_instance();
    let receipt = session
        .submit(SubmitSpec::new(design, board, JobConfig::default()).deadline_ms(300))
        .expect("submit");

    let mut states = Vec::new();
    session
        .for_each_event(WAIT, |ev| {
            if let JobEvent::State {
                state, termination, ..
            } = ev
            {
                states.push((*state, *termination));
            }
        })
        .expect("event stream");
    let (last_state, last_termination) = *states.last().unwrap();
    assert_eq!(last_state, JobState::Deadline, "states: {states:?}");
    assert_eq!(last_termination, Some(Termination::DeadlineExceeded));

    let outcomes = session.wait_all(WAIT).expect("wait_all");
    assert_eq!(outcomes[0].job, receipt.job);
    assert_eq!(outcomes[0].state, JobState::Deadline);
    assert_eq!(outcomes[0].termination, Some(Termination::DeadlineExceeded));

    session.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn v1_dialect_round_trips_byte_compatibly_against_the_v2_server() {
    let server = start_server(2);
    let inst = stream_instances(StreamSpec::default()).next().unwrap();

    // Bare v1 framing on a raw socket: one JSON line per verb, no hello.
    let stream = TcpStream::connect(server.local_addr()).expect("connect raw");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut ask = |request: &Request| -> String {
        let mut text = serde_json::to_string(request).unwrap();
        text.push('\n');
        writer.write_all(text.as_bytes()).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    };

    let submit_line = ask(&Request::Submit {
        design: inst.design.clone(),
        board: inst.board.clone(),
        config: JobConfig::default(),
        deadline_ms: None,
    });
    // Byte compatibility: the response is exactly the canonical v1
    // rendering of the parsed response — no injected fields, no event
    // frames, same field order.
    let parsed: Response = serde_json::from_str(&submit_line).expect("v1 submit response parses");
    assert_eq!(serde_json::to_string(&parsed).unwrap(), submit_line);
    let job = match parsed {
        Response::Submitted { job, .. } => job,
        other => panic!("expected submit response, got {other:?}"),
    };

    // poll until terminal, then result — the v1 loop verbatim.
    loop {
        let poll_line = ask(&Request::Poll { job });
        let parsed: Response = serde_json::from_str(&poll_line).expect("poll parses");
        assert_eq!(serde_json::to_string(&parsed).unwrap(), poll_line);
        match parsed {
            Response::PollState { state, .. } if state.is_terminal() => break,
            Response::PollState { .. } => std::thread::sleep(Duration::from_millis(2)),
            other => panic!("expected poll response, got {other:?}"),
        }
    }
    let result_line = ask(&Request::Result { job });
    let parsed: Response = serde_json::from_str(&result_line).expect("result parses");
    assert_eq!(serde_json::to_string(&parsed).unwrap(), result_line);
    match parsed {
        Response::ResultReady { state, solution, .. } => {
            assert_eq!(state, JobState::Done);
            assert!(solution.is_some());
        }
        other => panic!("expected result response, got {other:?}"),
    }

    // The v1 connection was counted as v1 and saw zero event frames
    // (every line above parsed as a Response).
    let stats_line = ask(&Request::Stats);
    match serde_json::from_str::<Response>(&stats_line).expect("stats parses") {
        Response::Stats(s) => assert!(s.proto_versions.v1 >= 1, "{s:?}"),
        other => panic!("expected stats, got {other:?}"),
    }

    // A Session forced to the v1 fallback speaks the same dialect:
    // submit per round-trip, watch-free waiting with backoff polling.
    let mut v1 = Session::connect_with_proto(server.local_addr(), 1).expect("v1 session");
    assert_eq!(v1.proto(), Proto::V1);
    let receipts = v1
        .submit_batch(vec![SubmitSpec::new(
            inst.design.clone(),
            inst.board.clone(),
            JobConfig::default(),
        )])
        .expect("v1 submits");
    assert!(receipts[0].cached, "same instance resubmitted must hit the cache");
    let outcomes = v1.wait_all(WAIT).expect("v1 wait_all");
    assert_eq!(outcomes[0].state, JobState::Done);
    // The v1 result shape carries no termination — and must not grow one.
    assert_eq!(outcomes[0].termination, None);

    ask(&Request::Shutdown);
    server.join();
}

#[test]
fn stalled_watcher_drops_progress_but_never_blocks_workers() {
    const JOBS: usize = 10;
    let queue = JobQueue::new({
        let mut o = QueueOptions::default();
        o.workers = 2;
        o
    });

    // A subscriber with a tiny progress budget that never reads: every
    // job's phases overflow the cap, and the only acceptable outcome is
    // dropped progress frames — not blocked workers.
    let outbox = queue.make_outbox(4);
    queue.subscribe(outbox.clone());

    let mut jobs = Vec::with_capacity(JOBS);
    for inst in stream_instances(StreamSpec::default()).take(JOBS) {
        let ticket =
            queue.submit_watched(inst.design, inst.board, JobConfig::default(), None, &outbox, true);
        jobs.push(ticket.id);
    }

    assert!(
        queue.wait_idle(Duration::from_secs(120)),
        "a stalled watcher must never stall the workers"
    );

    let s = queue.stats();
    assert_eq!(s.submitted, JOBS as u64);
    assert_eq!(
        s.completed + s.failed + s.cancelled + s.deadline,
        s.submitted,
        "terminal counters must stay conserved: {s:?}"
    );
    assert_eq!(s.completed, JOBS as u64);
    assert_eq!(s.cache.hits + s.cache.misses, JOBS as u64);
    assert!(
        s.events_dropped > 0,
        "the 4-frame cap must have dropped progress under {JOBS} solves"
    );

    // State frames are never dropped: draining the stalled outbox now
    // yields the complete terminal picture. (Small grace deadline: the
    // final event is queued before wait_idle waiters wake in the common
    // path, but counters are published a hair earlier.)
    let mut terminal_seen: HashMap<u64, JobState> = HashMap::new();
    let deadline = std::time::Instant::now() + Duration::from_millis(250);
    while let gmm_service::Popped::Frame(frame) = outbox.pop(Some(deadline)) {
        if let gmm_service::Frame::Event(JobEvent::State { job, state, .. }) = frame {
            if state.is_terminal() {
                terminal_seen.insert(job, state);
            }
        }
    }
    for job in jobs {
        assert_eq!(
            terminal_seen.get(&job),
            Some(&JobState::Done),
            "job {job}: terminal state frame must survive the pressure"
        );
    }
    queue.shutdown();
}
