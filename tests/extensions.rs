//! Integration tests for the paper's §6 future-work extensions:
//! multi-processing-unit pin models and port arbitration — including the
//! cross-crate pieces (simulator behaviour) their unit tests cannot reach.

use fpga_memmap::prelude::*;
use gmm_core::arbitration::{
    map_detailed_arbitrated, solve_global_arbitrated, ArbitrationOptions,
};
use gmm_core::multipu::{map_multi_pu, MultiPuBoard, PuId, PuOwnership};
use gmm_core::validate_detailed_policy;
use gmm_core::{CostMatrix, PreTable};
use gmm_sim::{simulate_mapping, Trace};

fn tight_world() -> (Design, Board) {
    let mut b = DesignBuilder::new("tight");
    b.segment("a", 100, 8).unwrap();
    b.segment("c", 100, 8).unwrap();
    let design = b.build().unwrap();
    let board = Board::new(
        "tiny",
        vec![BankType::new(
            "sram",
            1,
            1,
            vec![RamConfig::new(4096, 8)],
            2,
            2,
            Placement::DirectOffChip,
        )
        .unwrap()],
    )
    .unwrap();
    (design, board)
}

/// Shared ports serialize in the simulator: the §6 "price" of arbitration
/// is visible as stall cycles without any simulator change.
#[test]
fn simulator_shows_arbitration_stalls() {
    let (design, board) = tight_world();
    let pre = PreTable::build(&design, &board);
    let matrix = CostMatrix::build(&design, &board, &pre);
    let arb = ArbitrationOptions::default();
    let a = solve_global_arbitrated(
        &design,
        &board,
        &pre,
        &matrix,
        &CostWeights::default(),
        &SolverBackend::default(),
        &arb,
    )
    .unwrap();
    assert_eq!(a.overflow, vec![1]);
    let detailed = map_detailed_arbitrated(&design, &board, &a.global, &arb).unwrap();
    assert!(validate_detailed_policy(&design, &board, &detailed, arb.policy()).is_empty());

    let trace = Trace::random(&design, 400, 11);
    let report = simulate_mapping(&design, &board, &detailed, &trace).unwrap();
    assert!(
        report.total_stalls > 0,
        "port sharing must show up as stall cycles"
    );

    // Contrast: a dedicated-port mapping of the same trace on a roomier
    // board has no port-sharing stalls beyond pipelining.
    let roomy = Board::new(
        "roomy",
        vec![BankType::new(
            "sram",
            2,
            1,
            vec![RamConfig::new(4096, 8)],
            2,
            2,
            Placement::DirectOffChip,
        )
        .unwrap()],
    )
    .unwrap();
    let out = Mapper::new(MapperOptions::new()).map(&design, &roomy).unwrap();
    let dedicated = simulate_mapping(&design, &roomy, &out.detailed, &trace).unwrap();
    assert!(
        dedicated.total_stalls < report.total_stalls,
        "dedicated ports must stall less: {} vs {}",
        dedicated.total_stalls,
        report.total_stalls
    );
}

/// Multi-PU mapping changes assignments *and* the simulated traffic
/// pattern matches: segments placed near their PU pay fewer pin
/// crossings.
#[test]
fn multi_pu_end_to_end() {
    // Two identical on-chip types, two PUs, each next to one type.
    let mk_bank = |name: &str| {
        BankType::new(
            name,
            4,
            2,
            vec![RamConfig::new(4096, 1), RamConfig::new(512, 8)],
            1,
            1,
            Placement::OnChip,
        )
        .unwrap()
    };
    let board = Board::new("mpu", vec![mk_bank("near0"), mk_bank("near1")]).unwrap();
    let mpu = MultiPuBoard::new(board.clone(), vec![vec![0, 8], vec![8, 0]]).unwrap();

    let mut b = DesignBuilder::new("d");
    for i in 0..6 {
        b.segment(format!("s{i}"), 300, 8).unwrap();
    }
    let design = b.build().unwrap();
    let owner = PuOwnership(vec![PuId(0), PuId(1), PuId(0), PuId(1), PuId(0), PuId(1)]);

    let mapper = Mapper::new(MapperOptions::new());
    let out = map_multi_pu(&mapper, &design, &mpu, &owner).unwrap();
    for (d, t) in out.global.type_of.iter().enumerate() {
        assert_eq!(
            t.0,
            owner.0[d].0,
            "segment {d} must sit on the type next to its PU"
        );
    }
    // The detailed mapping still validates under the base rules.
    assert!(validate_detailed(&design, &board, &out.detailed).is_empty());

    // Compare against deliberately swapped ownership: the mapper's
    // pin-delay cost must be strictly better.
    let swapped = PuOwnership(vec![PuId(1), PuId(0), PuId(1), PuId(0), PuId(1), PuId(0)]);
    let pre = PreTable::build(&design, &board);
    let matrix = CostMatrix::build_with_pins(&design, &board, &pre, |d, t| {
        mpu.pins(owner.0[d.0], t)
    });
    // Evaluate the aligned assignment against the *swapped* cost view:
    // it must look worse there than the swapped-optimal mapping.
    let swapped_matrix = CostMatrix::build_with_pins(&design, &board, &pre, |d, t| {
        mpu.pins(swapped.0[d.0], t)
    });
    let aligned_cost = gmm_core::cost::assignment_cost(&matrix, &out.global.type_of);
    let mis_cost = gmm_core::cost::assignment_cost(&swapped_matrix, &out.global.type_of);
    assert!(aligned_cost.pin_delay < mis_cost.pin_delay);
}

/// Arbitration widens feasibility monotonically: anything the base model
/// maps, the arbitrated model maps at the same cost with zero overflow.
#[test]
fn arbitration_is_conservative_extension() {
    let mut b = DesignBuilder::new("d");
    for i in 0..5 {
        b.segment(format!("s{i}"), 128 + 64 * i, 4 + i).unwrap();
    }
    let design = b.build().unwrap();
    let board = Board::prototyping("XCV300", 2).unwrap();
    let pre = PreTable::build(&design, &board);
    let matrix = CostMatrix::build(&design, &board, &pre);
    let w = CostWeights::default();
    let backend = SolverBackend::default();

    let base = gmm_core::solve_global(&design, &board, &pre, &matrix, &w, &backend, false, &[])
        .unwrap();
    let arb = solve_global_arbitrated(
        &design,
        &board,
        &pre,
        &matrix,
        &w,
        &backend,
        &ArbitrationOptions::default(),
    )
    .unwrap();
    assert_eq!(arb.overflow.iter().sum::<u32>(), 0, "no need to share");
    assert!(
        (base.cost.weighted(&w) - arb.global.cost.weighted(&w)).abs() < 1e-6,
        "same optimum when ports suffice"
    );
}
