//! Restart soak for the persistent cache tier, end-to-end over TCP.
//!
//! A mapsrv daemon with a `--cache-dir` solves a batch, is hard-stopped
//! (simulated by tearing the final appended record — exactly the
//! artifact a `kill -9` mid-append leaves), and a fresh daemon on the
//! same directory gets the identical batch resubmitted. The second
//! daemon must answer from the disk tier: nonzero `disk_hits` in the
//! `stats` verb, zero `disk_corrupt` (a torn tail is recovery, not
//! damage), and payloads byte-identical to the first daemon's cold
//! solves — confirmed by replaying each mapping in the simulator.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use gmm_service::{JobConfig, JobQueue, JobState, MapClient, MapServer, QueueOptions};
use gmm_workloads::{stream_instances, StreamInstance, StreamSpec};

const BATCH: usize = 10;
const WAIT: Duration = Duration::from_secs(300);

fn start_server(dir: &Path) -> (MapServer, MapClient) {
    let queue = Arc::new(JobQueue::new({
        let mut o = QueueOptions::default();
        o.workers = 4;
        o.cache_shards = 8;
        o.persist_dir = Some(dir.to_path_buf());
        o
    }));
    let server = MapServer::start("127.0.0.1:0", queue).expect("bind ephemeral port");
    let client = MapClient::connect(server.local_addr()).expect("connect");
    (server, client)
}

fn instances() -> Vec<StreamInstance> {
    stream_instances(StreamSpec::default()).take(BATCH).collect()
}

fn solution_bytes(out: &gmm_service::RemoteOutcome) -> String {
    serde_json::to_string(out.solution.as_ref().expect("done job has a solution"))
        .expect("canonical render")
}

#[test]
fn restarted_daemon_serves_the_batch_byte_identically_from_disk() {
    let dir = std::env::temp_dir().join(format!(
        "gmm-restart-soak-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let instances = instances();

    // ---- Daemon 1: solve the whole batch cold. --------------------------
    let (server, mut client) = start_server(&dir);
    let jobs: Vec<u64> = instances
        .iter()
        .map(|inst| {
            let (job, _, cached) = client
                .submit(inst.design.clone(), inst.board.clone(), JobConfig::default())
                .expect("submit");
            assert!(!cached, "{}: first sight must solve cold", inst.name);
            job
        })
        .collect();
    let mut cold_bytes = Vec::with_capacity(BATCH);
    for (inst, &job) in instances.iter().zip(&jobs) {
        let out = client.wait(job, WAIT).expect("wait");
        assert_eq!(out.state, JobState::Done, "{}: {:?}", inst.name, out.error);
        cold_bytes.push(solution_bytes(&out));
    }
    let stats1 = client.stats().expect("stats");
    assert_eq!(stats1.disk_entries, BATCH as u64, "every optimal solve persists");
    assert_eq!(stats1.disk_hits, 0, "nothing was on disk to hit yet");
    assert_eq!(stats1.disk_corrupt, 0);
    client.shutdown().expect("shutdown verb");
    server.join();

    // ---- Hard stop: tear the final record, as kill -9 mid-append would. --
    let log = dir.join("cache.log");
    let bytes = std::fs::read(&log).expect("segment log exists");
    assert!(bytes.len() > 16, "log must hold the batch");
    std::fs::write(&log, &bytes[..bytes.len() - 3]).unwrap();

    // ---- Daemon 2: same directory, empty memory. -------------------------
    let (server, mut client) = start_server(&dir);
    let mut disk_served = 0usize;
    let jobs2: Vec<(u64, bool)> = instances
        .iter()
        .map(|inst| {
            let (job, state, cached) = client
                .submit(inst.design.clone(), inst.board.clone(), JobConfig::default())
                .expect("resubmit");
            if cached {
                // A disk hit completes the job at submit time.
                assert_eq!(state, JobState::Done, "{}", inst.name);
                disk_served += 1;
            }
            (job, cached)
        })
        .collect();
    // At most one record was torn, so at most one instance re-solves.
    assert!(
        disk_served >= BATCH - 1,
        "only {disk_served}/{BATCH} resubmissions were served from disk"
    );

    for ((inst, &(job, cached)), cold_json) in instances.iter().zip(&jobs2).zip(&cold_bytes) {
        let out = client.wait(job, WAIT).expect("wait");
        assert_eq!(out.state, JobState::Done, "{}: {:?}", inst.name, out.error);
        if !cached {
            continue; // the torn record's instance re-solved; Done is enough
        }
        let warm_json = solution_bytes(&out);
        assert_eq!(
            &warm_json, cold_json,
            "{}: disk-tier payload differs from the original solve",
            inst.name
        );
        // Byte-identity and a full simulator replay of the mapping.
        let detail = |json: &str| {
            let v: serde::Value = serde_json::from_str(json).unwrap();
            serde_json::to_string(v.get("detailed").expect("detailed field")).unwrap()
        };
        gmm_sim::validate_cache_hit(
            &inst.design,
            &inst.board,
            &detail(cold_json),
            &detail(&warm_json),
        )
        .unwrap_or_else(|e| panic!("{}: replay validation failed: {e}", inst.name));
    }

    let stats2 = client.stats().expect("stats");
    assert!(
        stats2.disk_hits >= (BATCH - 1) as u64,
        "stats must count the disk-tier hits: {stats2:?}"
    );
    assert_eq!(
        stats2.disk_corrupt, 0,
        "a torn tail is expected crash recovery, never corruption"
    );
    assert_eq!(
        stats2.cache_entries as usize, BATCH,
        "disk hits promote into the memory tier (and any re-solve re-enters it)"
    );

    client.shutdown().expect("shutdown verb");
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
