//! End-to-end test of the `mapsrv` batch mapping daemon.
//!
//! Drives the real TCP server with the real client over the JSON-lines
//! protocol: a batch of generated instances is submitted, solved, and
//! validated; the identical batch is then resubmitted and must be served
//! almost entirely from the content-addressed solution cache with
//! byte-identical payloads, which the simulator replays to confirm.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use gmm_service::{
    JobConfig, JobQueue, JobSolution, JobState, MapClient, MapServer, QueueOptions, RemoteOutcome,
};
use gmm_workloads::{stream_instances, StreamInstance, StreamSpec};

const BATCH: usize = 20;
const WAIT: Duration = Duration::from_secs(300);

fn start_server() -> (MapServer, MapClient) {
    let queue = Arc::new(JobQueue::new({
        let mut o = QueueOptions::default();
        o.workers = 4;
        o.cache_shards = 8;
        o
    }));
    let server = MapServer::start("127.0.0.1:0", queue).expect("bind ephemeral port");
    let client = MapClient::connect(server.local_addr()).expect("connect");
    (server, client)
}

fn instances() -> Vec<StreamInstance> {
    stream_instances(StreamSpec::default()).take(BATCH).collect()
}

fn submit_round(client: &mut MapClient, instances: &[StreamInstance]) -> Vec<(u64, bool)> {
    instances
        .iter()
        .map(|inst| {
            let (job, _state, cached) = client
                .submit(inst.design.clone(), inst.board.clone(), JobConfig::default())
                .expect("submit");
            (job, cached)
        })
        .collect()
}

fn wait_round(client: &mut MapClient, jobs: &[(u64, bool)]) -> Vec<RemoteOutcome> {
    jobs.iter()
        .map(|&(job, _)| client.wait(job, WAIT).expect("wait"))
        .collect()
}

fn solution_bytes(out: &RemoteOutcome) -> String {
    serde_json::to_string(out.solution.as_ref().expect("done job has a solution"))
        .expect("canonical render")
}

#[test]
fn mapsrv_end_to_end_batch_with_cache_hits() {
    let (server, mut client) = start_server();
    let instances = instances();

    // Round 1: everything solves cold and optimally.
    let jobs = submit_round(&mut client, &instances);
    let cold = wait_round(&mut client, &jobs);
    let mut cold_bytes = Vec::with_capacity(BATCH);
    for (inst, out) in instances.iter().zip(&cold) {
        assert_eq!(
            out.state,
            JobState::Done,
            "{}: {:?}",
            inst.name,
            out.error
        );
        assert!(out.objective.is_some(), "{}: no objective", inst.name);

        // The solution must be a valid optimal mapping, not just bytes:
        // deserialize and check it against the instance.
        let solution: JobSolution =
            serde_json::from_str(&solution_bytes(out)).expect("solution deserializes");
        assert_eq!(solution.global.type_of.len(), inst.design.num_segments());
        let violations =
            gmm_core::validate_detailed(&inst.design, &inst.board, &solution.detailed);
        assert!(violations.is_empty(), "{}: {violations:?}", inst.name);

        cold_bytes.push(solution_bytes(out));
    }

    // Round 2: the identical batch must be ≥95% cache hits...
    let jobs2 = submit_round(&mut client, &instances);
    let hits = jobs2.iter().filter(|&&(_, cached)| cached).count();
    assert!(
        hits as f64 >= 0.95 * BATCH as f64,
        "only {hits}/{BATCH} resubmissions hit the cache"
    );

    // ...each byte-identical to its cold solve and replay-identical in the
    // simulator.
    let warm = wait_round(&mut client, &jobs2);
    for ((inst, out), cold_json) in instances.iter().zip(&warm).zip(&cold_bytes) {
        assert_eq!(out.state, JobState::Done, "{}", inst.name);
        let warm_json = solution_bytes(out);
        assert_eq!(&warm_json, cold_json, "{}: cache hit not byte-identical", inst.name);

        let detail = |json: &str| {
            let v: serde::Value = serde_json::from_str(json).unwrap();
            serde_json::to_string(v.get("detailed").expect("detailed field")).unwrap()
        };
        gmm_sim::validate_cache_hit(
            &inst.design,
            &inst.board,
            &detail(cold_json),
            &detail(&warm_json),
        )
        .unwrap_or_else(|e| panic!("{}: replay validation failed: {e}", inst.name));
    }

    // Stats verb agrees with what we observed.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.jobs_submitted, 2 * BATCH as u64);
    assert_eq!(stats.jobs_completed, 2 * BATCH as u64);
    assert_eq!(stats.jobs_failed, 0);
    assert!(stats.cache_hits >= hits as u64);
    assert_eq!(stats.cache_entries, BATCH as u64);
    assert_eq!(stats.workers, 4);

    // Clean shutdown over the wire.
    client.shutdown().expect("shutdown verb");
    server.join();
}

#[test]
fn mapsrv_cancel_verb_and_job_deadlines_over_tcp() {
    let (server, mut client) = start_server();
    // Second-scale instance, so the cancel/deadline lands mid-solve.
    let (design, board) = gmm_workloads::slow_table3_instance();

    // Cancel a running job: submit, let a worker claim it, fire cancel.
    let (job, _, cached) = client
        .submit(design.clone(), board.clone(), JobConfig::default())
        .expect("submit");
    assert!(!cached);
    std::thread::sleep(Duration::from_millis(200));
    let at_call = client.cancel(job).expect("cancel verb");
    assert!(
        matches!(
            at_call,
            JobState::Running | JobState::Queued | JobState::Cancelled | JobState::Done
        ),
        "unexpected cancel-time state {at_call:?}"
    );
    // The job must reach a structured terminal state observable via poll
    // (`cancelled` unless the solve won the race).
    let out = client.wait(job, WAIT).expect("wait after cancel");
    assert!(
        matches!(out.state, JobState::Cancelled | JobState::Done),
        "unexpected terminal state {:?}",
        out.state
    );
    if out.state == JobState::Cancelled {
        assert!(out.error.as_deref().unwrap().contains("cancelled"));
        assert!(out.solution.is_none(), "cancelled jobs ship no payload");
        let stats = client.stats().expect("stats");
        assert!(stats.jobs_cancelled >= 1, "stats must count the cancel");
        assert_eq!(stats.jobs_failed, 0, "cancellation is not a failure");
    }

    // Cancelling an unknown id is a structured remote error.
    match client.cancel(424_242) {
        Err(gmm_service::ClientError::Remote(msg)) => assert!(msg.contains("unknown job")),
        other => panic!("expected remote error, got {other:?}"),
    }

    // Per-job deadline over the wire: 50ms against a second-scale solve.
    let (job2, _, _) = client
        .submit_with_deadline(
            design,
            board,
            JobConfig::default(),
            Some(Duration::from_millis(50)),
        )
        .expect("submit with deadline");
    let out2 = client.wait(job2, WAIT).expect("wait for deadline'd job");
    assert_eq!(out2.state, JobState::Deadline, "err: {:?}", out2.error);
    assert!(out2.error.as_deref().unwrap().contains("deadline"));
    let stats = client.stats().expect("stats");
    assert!(stats.jobs_deadline >= 1);

    client.shutdown().expect("shutdown");
    server.join();
}

#[test]
fn mapsrv_survives_malformed_and_unknown_requests() {
    let (server, mut client) = start_server();

    // Raw socket: garbage lines get an error response, connection stays up.
    let stream = TcpStream::connect(server.local_addr()).expect("connect raw");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    for bad in ["this is not json", "{\"verb\":\"frobnicate\"}", "{\"verb\":\"poll\"}"] {
        writer.write_all(bad.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("\"ok\":false"),
            "expected error response to {bad:?}, got {line:?}"
        );
    }

    // Unknown job ids are remote errors, not hangs or disconnects.
    match client.poll(424242) {
        Err(gmm_service::ClientError::Remote(msg)) => assert!(msg.contains("unknown job")),
        other => panic!("expected remote error, got {other:?}"),
    }

    client.shutdown().expect("shutdown");
    server.join();
}
